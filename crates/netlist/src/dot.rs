//! Graphviz DOT export for netlists (debugging / documentation aid).

use crate::kind::PinDir;
use crate::netlist::Netlist;
use std::fmt::Write;

/// Renders the netlist as a Graphviz digraph: one node per component
/// (labelled with its kind), one node per port, edges following signal
/// flow from drivers to loads.
///
/// # Examples
///
/// ```
/// use milo_netlist::{to_dot, ComponentKind, GateFn, GenericMacro, Netlist, PinDir};
///
/// let mut nl = Netlist::new("d");
/// let a = nl.add_net("a");
/// let y = nl.add_net("y");
/// let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
/// nl.connect_named(g, "A0", a)?;
/// nl.connect_named(g, "Y", y)?;
/// nl.add_port("a", PinDir::In, a);
/// nl.add_port("y", PinDir::Out, y);
/// let dot = to_dot(&nl);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("INV"));
/// # Ok::<(), milo_netlist::NetlistError>(())
/// ```
pub fn to_dot(nl: &Netlist) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", nl.name).expect("string write");
    writeln!(out, "  rankdir=LR;").expect("string write");
    writeln!(out, "  node [shape=box, fontname=\"monospace\"];").expect("string write");
    // Ports.
    for (i, p) in nl.ports().iter().enumerate() {
        let shape = match p.dir {
            PinDir::In => "invhouse",
            PinDir::Out => "house",
        };
        writeln!(out, "  p{i} [label=\"{}\", shape={shape}];", p.name).expect("string write");
    }
    // Components.
    for id in nl.component_ids() {
        let comp = nl.component(id).expect("live id");
        writeln!(
            out,
            "  c{} [label=\"{}\\n{}\"];",
            id.index(),
            comp.name,
            comp.kind.label()
        )
        .expect("string write");
    }
    // Edges: driver → loads per net (labelled with the net name).
    for net in nl.net_ids() {
        let n = nl.net(net).expect("live net");
        // Sources: driving output pin and/or input ports.
        let mut sources: Vec<String> = Vec::new();
        if let Some(drv) = nl.driver(net) {
            sources.push(format!("c{}", drv.component.index()));
        }
        for (i, p) in nl.ports().iter().enumerate() {
            if p.net == net && p.dir == PinDir::In {
                sources.push(format!("p{i}"));
            }
        }
        // Sinks: loading input pins and output ports.
        let mut sinks: Vec<String> = Vec::new();
        for load in nl.loads(net) {
            sinks.push(format!("c{}", load.component.index()));
        }
        for (i, p) in nl.ports().iter().enumerate() {
            if p.net == net && p.dir == PinDir::Out {
                sinks.push(format!("p{i}"));
            }
        }
        for s in &sources {
            for t in &sinks {
                writeln!(out, "  {s} -> {t} [label=\"{}\"];", n.name).expect("string write");
            }
        }
    }
    writeln!(out, "}}").expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{GateFn, GenericMacro};
    use crate::netlist::ComponentKind;

    #[test]
    fn dot_contains_all_elements() {
        let mut nl = Netlist::new("dot");
        let a = nl.add_net("sig_a");
        let y = nl.add_net("sig_y");
        let g = nl.add_component(
            "u1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Nand, 2)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "A1", a).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        let dot = to_dot(&nl);
        assert!(dot.contains("digraph \"dot\""));
        assert!(dot.contains("NAND2"));
        assert!(dot.contains("sig_a"));
        assert!(dot.contains("invhouse"));
        assert!(dot.contains("house"));
        // One edge from the input port to the gate, one from the gate to
        // the output port.
        assert!(dot.contains("-> c0"));
        assert!(dot.contains("c0 ->"));
    }

    #[test]
    fn dot_of_empty_netlist() {
        let dot = to_dot(&Netlist::new("empty"));
        assert!(dot.starts_with("digraph \"empty\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
