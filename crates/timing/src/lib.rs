//! # milo-timing
//!
//! Timing analysis and design statistics for the MILO reproduction:
//!
//! * [`analyze`] — static timing analysis with critical-path
//!   reconstruction and the §4 point-of-optimization criteria
//!   ([`point_of_optimization`]); dense id-indexed vectors and one-pass
//!   fanout/driver tables keep it allocation-light;
//! * [`IncrementalSta`] — an incrementally maintained analysis: after a
//!   rewrite, only the fan-out cone of the touched components/nets (a
//!   [`milo_netlist::TouchSet`], produced by the rules engine's undo
//!   log) is re-propagated, with results provably equal to a
//!   from-scratch [`analyze`]. [`statistics_with_sta`] reuses it so the
//!   rule-search feedback cycle stops re-analyzing the whole netlist
//!   per candidate (see `docs/PERFORMANCE.md`);
//! * [`statistics`] — the Fig. 11 statistics generator (area, power,
//!   delay, cell count) feeding the microarchitecture critic;
//! * [`model`] — delay/area/power models for generic macros, technology
//!   cells, and the §5 parameterized estimator for microarchitecture
//!   components.
//!
//! # Examples
//!
//! ```
//! use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist, PinDir};
//! use milo_timing::{analyze, statistics};
//!
//! let mut nl = Netlist::new("inv");
//! let a = nl.add_net("a");
//! let y = nl.add_net("y");
//! let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
//! nl.connect_named(g, "A0", a)?;
//! nl.connect_named(g, "Y", y)?;
//! nl.add_port("a", PinDir::In, a);
//! nl.add_port("y", PinDir::Out, y);
//!
//! let sta = analyze(&nl)?;
//! assert!(sta.worst_delay() > 0.0);
//! let stats = statistics(&nl)?;
//! assert_eq!(stats.cells, 1);
//! # Ok::<(), milo_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]

pub mod model;
mod sta;
mod stats;

pub use model::{estimate_generic, estimate_kind, estimate_micro, Estimate};
pub use sta::{analyze, on_critical_path, point_of_optimization, Endpoint, IncrementalSta, Sta};
pub use stats::{gate_equivalents, statistics, statistics_with_sta, DesignStats};
