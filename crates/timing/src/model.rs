//! Delay/area/power models.
//!
//! Mapped technology cells carry their own numbers. Generic macros use a
//! built-in estimate table, and microarchitecture components use the
//! parameterized estimator of §5 ("a formula that when passed the
//! component parameters produces a reasonable estimate of the time and
//! area required") — the cheap alternative to compiling the component and
//! measuring the mapped design.

use milo_netlist::{
    ArithOps, CarryMode, ComponentKind, GateFn, GenericMacro, MicroComponent, TechCell,
};

/// Estimated characteristics of a component.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Estimate {
    /// Worst pin-to-pin delay in ns.
    pub delay: f64,
    /// Area in cell units.
    pub area: f64,
    /// Power in mA.
    pub power: f64,
}

/// Estimate table for generic macros (used before technology mapping).
pub fn estimate_generic(m: &GenericMacro) -> Estimate {
    match *m {
        GenericMacro::Gate(f, n) => {
            let nf = f64::from(n);
            let (d, a, p) = match f {
                GateFn::Inv | GateFn::Buf => (0.3, 0.5, 0.3),
                GateFn::And | GateFn::Nand => (0.5 + 0.08 * nf, 0.9 + 0.25 * nf, 0.5 + 0.1 * nf),
                GateFn::Or | GateFn::Nor => (0.45 + 0.07 * nf, 0.9 + 0.22 * nf, 0.5 + 0.1 * nf),
                GateFn::Xor | GateFn::Xnor => (0.9 + 0.1 * nf, 1.6 + 0.2 * nf, 0.9),
            };
            Estimate {
                delay: d,
                area: a,
                power: p,
            }
        }
        GenericMacro::Vdd | GenericMacro::Vss => Estimate {
            delay: 0.0,
            area: 0.1,
            power: 0.05,
        },
        GenericMacro::Mux { selects } => Estimate {
            delay: 0.7 + 0.3 * f64::from(selects),
            area: 1.0 + 0.8 * f64::from(1u8 << selects),
            power: 0.6 + 0.4 * f64::from(selects),
        },
        GenericMacro::Decoder { inputs } => Estimate {
            delay: 0.6 + 0.3 * f64::from(inputs),
            area: 0.8 + 0.5 * f64::from(1u8 << inputs),
            power: 0.6 + 0.4 * f64::from(inputs),
        },
        GenericMacro::Adder { bits, cla } => {
            let bf = f64::from(bits);
            if cla {
                Estimate {
                    delay: 1.1 + 0.2 * bf,
                    area: 2.2 * bf + 2.0,
                    power: 1.3 * bf,
                }
            } else {
                Estimate {
                    delay: 0.7 * bf + 0.6,
                    area: 1.7 * bf,
                    power: 0.9 * bf,
                }
            }
        }
        GenericMacro::Comparator { bits } => {
            let bf = f64::from(bits);
            Estimate {
                delay: 0.8 + 0.35 * bf,
                area: 1.3 * bf + 0.5,
                power: 0.7 * bf,
            }
        }
        GenericMacro::Counter { bits } => {
            let bf = f64::from(bits);
            Estimate {
                delay: 1.2 + 0.2 * bf,
                area: 2.3 * bf,
                power: 1.2 * bf,
            }
        }
        GenericMacro::Dff { set, reset, enable } => {
            let extra = f64::from(u8::from(set) + u8::from(reset) + u8::from(enable));
            Estimate {
                delay: 1.0,
                area: 2.0 + 0.2 * extra,
                power: 1.1 + 0.1 * extra,
            }
        }
        GenericMacro::Latch { set, reset } => {
            let extra = f64::from(u8::from(set) + u8::from(reset));
            Estimate {
                delay: 0.8,
                area: 1.4 + 0.2 * extra,
                power: 0.9 + 0.1 * extra,
            }
        }
    }
}

/// The §5 parameterized estimator for microarchitecture components.
///
/// Only used when the microarchitecture critic wants a quick screen; the
/// accurate route is compiling + mapping + analyzing (§6.3).
pub fn estimate_micro(m: &MicroComponent) -> Estimate {
    match *m {
        MicroComponent::Gate { function, inputs } => {
            // log4 tree of generic gates.
            let levels = (f64::from(inputs).ln() / 4f64.ln()).ceil().max(1.0);
            let base = estimate_generic(&GenericMacro::Gate(function, 4));
            Estimate {
                delay: base.delay * levels,
                area: base.area * (f64::from(inputs) / 3.0).max(1.0),
                power: base.power * (f64::from(inputs) / 3.0).max(1.0),
            }
        }
        MicroComponent::Multiplexor {
            bits,
            inputs,
            enable,
        } => {
            let selects = inputs.trailing_zeros() as f64;
            let bf = f64::from(bits);
            Estimate {
                delay: 0.7 + 0.45 * selects + if enable { 0.5 } else { 0.0 },
                area: bf * (0.9 * f64::from(inputs) + 0.4),
                power: bf * (0.5 + 0.3 * selects),
            }
        }
        MicroComponent::Decoder { bits, enable } => Estimate {
            delay: 0.6 + 0.35 * f64::from(bits) + if enable { 0.5 } else { 0.0 },
            area: 0.7 * f64::from(1u16 << bits) + 0.5,
            power: 0.5 + 0.4 * f64::from(bits),
        },
        MicroComponent::Comparator { bits, .. } => {
            let bf = f64::from(bits);
            Estimate {
                delay: 0.9 + 0.4 * bf / 2.0,
                area: 1.4 * bf,
                power: 0.8 * bf,
            }
        }
        MicroComponent::LogicUnit {
            function,
            inputs,
            bits,
        } => {
            let slice = estimate_micro(&MicroComponent::Gate { function, inputs });
            Estimate {
                delay: slice.delay,
                area: slice.area * f64::from(bits),
                power: slice.power * f64::from(bits),
            }
        }
        MicroComponent::ArithmeticUnit { bits, ops, mode } => {
            let bf = f64::from(bits);
            let groups = (bf / 4.0).ceil();
            let base = match mode {
                CarryMode::Ripple => Estimate {
                    delay: 0.85 * bf + 0.6,
                    area: 1.8 * bf,
                    power: 0.9 * bf,
                },
                CarryMode::CarryLookahead => Estimate {
                    delay: 0.6 * groups + 1.3,
                    area: 2.6 * bf,
                    power: 1.35 * bf,
                },
            };
            let op_count = ops.ops().len() as f64;
            let cond = if ops == ArithOps::ADD {
                0.0
            } else {
                0.4 + 0.2 * op_count
            };
            Estimate {
                delay: base.delay + if op_count > 1.0 { 0.6 } else { cond.min(0.3) },
                area: base.area + cond * bf,
                power: base.power + 0.3 * cond * bf,
            }
        }
        MicroComponent::Register {
            bits, funcs, ctrl, ..
        } => {
            let bf = f64::from(bits);
            let sources = f64::from(funcs.source_count());
            let ctrl_extra =
                f64::from(u8::from(ctrl.set) + u8::from(ctrl.reset) + u8::from(ctrl.enable));
            Estimate {
                delay: 1.0 + if sources > 1.0 { 0.9 } else { 0.0 },
                area: bf * (2.0 + 0.9 * (sources - 1.0) + 0.2 * ctrl_extra),
                power: bf * (1.1 + 0.3 * (sources - 1.0)),
            }
        }
        MicroComponent::Counter { bits, funcs, ctrl } => {
            let bf = f64::from(bits);
            let ctrl_extra =
                f64::from(u8::from(ctrl.set) + u8::from(ctrl.reset) + u8::from(ctrl.enable));
            let loadable = if funcs.load { 0.8 } else { 0.0 };
            Estimate {
                delay: 1.6 + 0.18 * bf,
                area: bf * (2.6 + loadable + 0.2 * ctrl_extra),
                power: bf * (1.3 + 0.2 * loadable),
            }
        }
    }
}

/// Estimated characteristics of any component kind.
pub fn estimate_kind(kind: &ComponentKind) -> Estimate {
    match kind {
        ComponentKind::Generic(m) => estimate_generic(m),
        ComponentKind::Micro(m) => estimate_micro(m),
        ComponentKind::Tech(c) => Estimate {
            delay: c.delay,
            area: c.area,
            power: c.power,
        },
        // Instances must be flattened before analysis; give a neutral
        // placeholder so statistics do not panic mid-flow.
        ComponentKind::Instance { .. } => Estimate::default(),
    }
}

/// Intrinsic delay from the `input_index`-th input pin of a component to
/// its outputs (before load-dependent terms).
pub fn input_pin_delay(kind: &ComponentKind, input_index: usize) -> f64 {
    match kind {
        ComponentKind::Tech(c) => c.input_delay(input_index),
        other => estimate_kind(other).delay,
    }
}

/// Load-dependent delay increment per fanout.
pub fn load_delay(kind: &ComponentKind) -> f64 {
    match kind {
        ComponentKind::Tech(c) => c.load_delay,
        _ => 0.1,
    }
}

/// The cell of a mapped component, if it is technology-mapped.
pub fn tech_cell(kind: &ComponentKind) -> Option<&TechCell> {
    match kind {
        ComponentKind::Tech(c) => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cla_estimate_faster_bigger() {
        let r = estimate_micro(&MicroComponent::ArithmeticUnit {
            bits: 16,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        });
        let c = estimate_micro(&MicroComponent::ArithmeticUnit {
            bits: 16,
            ops: ArithOps::ADD,
            mode: CarryMode::CarryLookahead,
        });
        assert!(c.delay < r.delay, "CLA faster: {c:?} vs {r:?}");
        assert!(c.area > r.area, "CLA bigger");
    }

    #[test]
    fn wider_gates_slower() {
        let g2 = estimate_micro(&MicroComponent::Gate {
            function: GateFn::Or,
            inputs: 4,
        });
        let g16 = estimate_micro(&MicroComponent::Gate {
            function: GateFn::Or,
            inputs: 16,
        });
        assert!(g16.delay > g2.delay);
    }

    #[test]
    fn tech_cell_numbers_pass_through() {
        let c = milo_netlist::TechCell {
            name: "X".into(),
            family: "t".into(),
            function: milo_netlist::CellFunction::Gate(GateFn::And, 2),
            area: 3.0,
            delay: 0.9,
            pin_delay: vec![0.5, 1.0],
            load_delay: 0.1,
            power: 0.4,
            max_fanout: 4,
            level: milo_netlist::PowerLevel::Standard,
        };
        let kind = ComponentKind::Tech(c);
        assert!((estimate_kind(&kind).delay - 0.9).abs() < 1e-12);
        assert!((input_pin_delay(&kind, 0) - 0.5).abs() < 1e-12);
        assert!((input_pin_delay(&kind, 1) - 1.0).abs() < 1e-12);
    }
}
