//! Static timing analysis: arrival times, critical paths, slacks and the
//! point-of-optimization selection criteria of §4.

use crate::model::{input_pin_delay, load_delay};
use milo_netlist::{ComponentId, NetId, Netlist, NetlistError, PinDir, PinRef};
use std::collections::HashMap;

/// A timing endpoint: where a path terminates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A primary output port, by name.
    Port(String),
    /// An input pin of a sequential element.
    SeqInput(PinRef),
}

/// Result of a timing run.
#[derive(Clone, Debug)]
pub struct Sta {
    arrival: HashMap<NetId, f64>,
    /// The driving pin whose input determined each net's arrival.
    pred: HashMap<NetId, PinRef>,
    endpoints: Vec<(Endpoint, f64, NetId)>,
}

/// Runs static timing analysis.
///
/// Launch points (arrival 0): input-port nets and sequential-element
/// outputs. Capture points: output ports and sequential-element inputs.
/// Component delays come from [`crate::model`]; each output additionally
/// pays `load_delay × fanout`.
///
/// # Errors
///
/// Propagates topological-order failures (combinational cycles).
pub fn analyze(nl: &Netlist) -> Result<Sta, NetlistError> {
    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut pred: HashMap<NetId, PinRef> = HashMap::new();
    for p in nl.ports() {
        if p.dir == PinDir::In {
            arrival.insert(p.net, 0.0);
        }
    }
    let order = nl.topo_order()?;
    for id in &order {
        let comp = nl.component(*id)?;
        if comp.kind.is_sequential() {
            for (pin_idx, pin) in comp.pins.iter().enumerate() {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        arrival.insert(net, 0.0);
                        pred.insert(net, PinRef::new(*id, pin_idx as u16));
                    }
                }
            }
        }
    }
    for id in &order {
        let comp = nl.component(*id)?;
        if comp.kind.is_sequential() {
            continue;
        }
        // Worst input arrival + per-pin delay.
        let mut worst: Option<(f64, PinRef)> = None;
        let mut input_index = 0usize;
        for (pin_idx, pin) in comp.pins.iter().enumerate() {
            if pin.dir != PinDir::In {
                continue;
            }
            let a = pin
                .net
                .and_then(|n| arrival.get(&n).copied())
                .unwrap_or(0.0)
                + input_pin_delay(&comp.kind, input_index);
            input_index += 1;
            if worst.map_or(true, |(w, _)| a > w) {
                worst = Some((a, PinRef::new(*id, pin_idx as u16)));
            }
        }
        let (base, through) = worst.unwrap_or((
            0.0,
            PinRef::new(*id, 0), // source-like component (constants)
        ));
        for (pin_idx, pin) in comp.pins.iter().enumerate() {
            if pin.dir != PinDir::Out {
                continue;
            }
            if let Some(net) = pin.net {
                let a = base + load_delay(&comp.kind) * nl.fanout(net) as f64;
                let entry = arrival.entry(net).or_insert(f64::MIN);
                if a > *entry {
                    *entry = a;
                    let _ = pin_idx;
                    pred.insert(net, through);
                }
            }
        }
    }
    // Endpoints.
    let mut endpoints = Vec::new();
    for p in nl.ports() {
        if p.dir == PinDir::Out {
            let a = arrival.get(&p.net).copied().unwrap_or(0.0);
            endpoints.push((Endpoint::Port(p.name.clone()), a, p.net));
        }
    }
    for id in nl.component_ids() {
        let comp = nl.component(id)?;
        if !comp.kind.is_sequential() {
            continue;
        }
        for (pin_idx, pin) in comp.pins.iter().enumerate() {
            if pin.dir == PinDir::In {
                if let Some(net) = pin.net {
                    let a = arrival.get(&net).copied().unwrap_or(0.0);
                    endpoints.push((Endpoint::SeqInput(PinRef::new(id, pin_idx as u16)), a, net));
                }
            }
        }
    }
    Ok(Sta { arrival, pred, endpoints })
}

impl Sta {
    /// Arrival time at a net (0 if unknown).
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival.get(&net).copied().unwrap_or(0.0)
    }

    /// All endpoints with their arrival times.
    pub fn endpoints(&self) -> &[(Endpoint, f64, NetId)] {
        &self.endpoints
    }

    /// The worst (latest) endpoint.
    pub fn worst(&self) -> Option<(&Endpoint, f64)> {
        self.endpoints
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("arrivals are not NaN"))
            .map(|(e, a, _)| (e, *a))
    }

    /// Worst combinational delay of the design (0 for empty designs).
    pub fn worst_delay(&self) -> f64 {
        self.worst().map_or(0.0, |(_, a)| a)
    }

    /// Reconstructs the component chain of the worst path into `endpoint`
    /// (from launch to capture).
    pub fn critical_path_components(&self, nl: &Netlist, end_net: NetId) -> Vec<ComponentId> {
        let mut out = Vec::new();
        let mut net = end_net;
        let mut guard = 0usize;
        while let Some(pin) = self.pred.get(&net) {
            guard += 1;
            if guard > nl.component_count() + 2 {
                break;
            }
            let Ok(comp) = nl.component(pin.component) else { break };
            out.push(pin.component);
            if comp.kind.is_sequential() {
                break; // reached a launch point
            }
            // Continue from the net feeding the recorded input pin.
            match comp.pins.get(pin.pin as usize).and_then(|p| p.net) {
                Some(prev) if prev != net => net = prev,
                _ => break,
            }
        }
        out.reverse();
        out
    }

    /// Endpoints within `margin` of the worst arrival — the critical-path
    /// set of Fig. 8.
    pub fn critical_endpoints(&self, margin: f64) -> Vec<(&Endpoint, f64, NetId)> {
        let worst = self.worst_delay();
        self.endpoints
            .iter()
            .filter(|(_, a, _)| *a >= worst - margin)
            .map(|(e, a, n)| (e, *a, *n))
            .collect()
    }

    /// Required-time map given per-endpoint required times; nets not on any
    /// constrained cone get `f64::INFINITY`.
    pub fn required_times(
        &self,
        nl: &Netlist,
        required_at: impl Fn(&Endpoint) -> Option<f64>,
    ) -> HashMap<NetId, f64> {
        let mut required: HashMap<NetId, f64> = HashMap::new();
        for (e, _, net) in &self.endpoints {
            if let Some(r) = required_at(e) {
                let entry = required.entry(*net).or_insert(f64::INFINITY);
                *entry = entry.min(r);
            }
        }
        // Backward propagation over the reversed topological order.
        let Ok(order) = nl.topo_order() else { return required };
        for id in order.iter().rev() {
            let Ok(comp) = nl.component(*id) else { continue };
            if comp.kind.is_sequential() {
                continue;
            }
            // Required at the component's output nets.
            let mut out_req = f64::INFINITY;
            for pin in &comp.pins {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        out_req = out_req
                            .min(required.get(&net).copied().unwrap_or(f64::INFINITY));
                    }
                }
            }
            if out_req == f64::INFINITY {
                continue;
            }
            let mut input_index = 0usize;
            for pin in &comp.pins {
                if pin.dir != PinDir::In {
                    continue;
                }
                let d = input_pin_delay(&comp.kind, input_index);
                input_index += 1;
                if let Some(net) = pin.net {
                    let load = load_delay(&comp.kind) * nl.fanout(net) as f64;
                    let r = out_req - d - load;
                    let entry = required.entry(net).or_insert(f64::INFINITY);
                    *entry = entry.min(r);
                }
            }
        }
        required
    }

    /// Slack of a net under a required-time map.
    pub fn slack(&self, net: NetId, required: &HashMap<NetId, f64>) -> f64 {
        required.get(&net).copied().unwrap_or(f64::INFINITY) - self.arrival(net)
    }
}

/// Selects the point of optimization per §4: "the component which the most
/// critical paths pass through", ties broken by "the component … closest
/// to an external input".
pub fn point_of_optimization(
    nl: &Netlist,
    sta: &Sta,
    margin: f64,
) -> Option<ComponentId> {
    let mut counts: HashMap<ComponentId, usize> = HashMap::new();
    for (_, _, net) in sta.critical_endpoints(margin) {
        for comp in sta.critical_path_components(nl, net) {
            if nl.component(comp).is_ok_and(|c| !c.kind.is_sequential()) {
                *counts.entry(comp).or_insert(0) += 1;
            }
        }
    }
    // Criterion 1: max path count. Criterion 2: earliest output arrival
    // (closest to an external input).
    counts
        .into_iter()
        .map(|(id, count)| {
            let out_arrival = nl
                .component(id)
                .ok()
                .and_then(|c| {
                    c.pins
                        .iter()
                        .find(|p| p.dir == PinDir::Out)
                        .and_then(|p| p.net)
                        .map(|n| sta.arrival(n))
                })
                .unwrap_or(f64::MAX);
            (id, count, out_arrival)
        })
        .max_by(|a, b| {
            a.1.cmp(&b.1)
                .then(b.2.partial_cmp(&a.2).expect("arrivals are not NaN"))
        })
        .map(|(id, _, _)| id)
}

/// True when the component lies on the worst critical path.
pub fn on_critical_path(nl: &Netlist, sta: &Sta, id: ComponentId) -> bool {
    let Some((_, _)) = sta.worst() else { return false };
    let worst_net = sta
        .endpoints()
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("not NaN"))
        .map(|(_, _, n)| *n);
    match worst_net {
        Some(n) => sta.critical_path_components(nl, n).contains(&id),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist};

    /// in -> INV -> INV -> out, plus a short side branch.
    fn chain() -> (Netlist, ComponentId, ComponentId, ComponentId) {
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y = nl.add_net("y");
        let z = nl.add_net("z");
        let g1 = nl.add_component("g1", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        let g2 = nl.add_component("g2", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        let g3 = nl.add_component("g3", ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)));
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.connect_named(g3, "A0", a).unwrap();
        nl.connect_named(g3, "Y", z).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        nl.add_port("z", PinDir::Out, z);
        (nl, g1, g2, g3)
    }

    #[test]
    fn chain_has_two_gate_path() {
        let (nl, g1, g2, _) = chain();
        let sta = analyze(&nl).unwrap();
        let (e, a) = sta.worst().unwrap();
        assert_eq!(*e, Endpoint::Port("y".into()));
        assert!(a > 0.0);
        let worst_net = nl.port("y").unwrap().net;
        let path = sta.critical_path_components(&nl, worst_net);
        assert_eq!(path, vec![g1, g2]);
    }

    #[test]
    fn point_of_optimization_picks_shared_component() {
        // Two outputs sharing g1: g1 is on both critical paths.
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        let g1 = nl.add_component("g1", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        let g2 = nl.add_component("g2", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        let g3 = nl.add_component("g3", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y1).unwrap();
        nl.connect_named(g3, "A0", m).unwrap();
        nl.connect_named(g3, "Y", y2).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y1", PinDir::Out, y1);
        nl.add_port("y2", PinDir::Out, y2);
        let sta = analyze(&nl).unwrap();
        assert_eq!(point_of_optimization(&nl, &sta, 0.01), Some(g1));
    }

    #[test]
    fn sequential_cuts_paths() {
        let mut nl = Netlist::new("s");
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        let y = nl.add_net("y");
        let clk = nl.add_net("clk");
        let ff = nl.add_component(
            "ff",
            ComponentKind::Generic(GenericMacro::Dff { set: false, reset: false, enable: false }),
        );
        let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
        nl.connect_named(ff, "D", d).unwrap();
        nl.connect_named(ff, "CLK", clk).unwrap();
        nl.connect_named(ff, "Q", q).unwrap();
        nl.connect_named(g, "A0", q).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("d", PinDir::In, d);
        nl.add_port("clk", PinDir::In, clk);
        nl.add_port("y", PinDir::Out, y);
        let sta = analyze(&nl).unwrap();
        // Endpoints: port y, plus the DFF's D and CLK inputs.
        assert_eq!(sta.endpoints().len(), 3);
        // Path to y starts at the DFF output (arrival 0) + one inverter.
        let y_net = nl.port("y").unwrap().net;
        assert!(sta.arrival(y_net) > 0.0);
        assert!(sta.arrival(y_net) < 1.0);
    }

    #[test]
    fn required_and_slack() {
        let (nl, _, _, _) = chain();
        let sta = analyze(&nl).unwrap();
        let req = sta.required_times(&nl, |e| match e {
            Endpoint::Port(p) if p == "y" => Some(10.0),
            _ => None,
        });
        let y_net = nl.port("y").unwrap().net;
        let slack = sta.slack(y_net, &req);
        assert!(slack > 0.0 && slack < 10.0);
        // Unconstrained output has infinite slack.
        let z_net = nl.port("z").unwrap().net;
        assert_eq!(sta.slack(z_net, &req), f64::INFINITY);
    }
}
