//! Static timing analysis: arrival times, critical paths, slacks and the
//! point-of-optimization selection criteria of §4.
//!
//! Two entry points share one propagation core:
//!
//! * [`analyze`] — from-scratch analysis over dense id-indexed vectors
//!   (fanout counts and net drivers are computed in one pass; no hash
//!   maps on the hot path);
//! * [`IncrementalSta`] — keeps the last analysis alive and, given the
//!   [`milo_netlist::TouchSet`] of a rewrite, re-propagates only the
//!   fan-out cone of the touched components/nets. The rules engine's
//!   accept/undo loop refreshes it after every transaction instead of
//!   re-analyzing the whole netlist.

use crate::model::{input_pin_delay, load_delay};
use milo_netlist::{ComponentId, NetId, Netlist, NetlistError, PinDir, PinRef, TouchSet};
use std::collections::HashMap;

/// `sta.full_rebuilds` in the global metrics registry: how often the
/// incremental path gave up and re-analyzed from scratch — the
/// fallback rate docs/OBSERVABILITY.md tracks.
fn obs_full_rebuilds() -> &'static milo_trace::Counter {
    static C: std::sync::OnceLock<std::sync::Arc<milo_trace::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| milo_trace::Registry::global().counter("sta.full_rebuilds"))
}

/// `sta.refreshes`: incremental refresh requests (the denominator for
/// the fallback rate).
fn obs_refreshes() -> &'static milo_trace::Counter {
    static C: std::sync::OnceLock<std::sync::Arc<milo_trace::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| milo_trace::Registry::global().counter("sta.refreshes"))
}

/// A timing endpoint: where a path terminates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A primary output port, by name.
    Port(String),
    /// An input pin of a sequential element.
    SeqInput(PinRef),
}

/// Result of a timing run. Arrival and predecessor tables are dense
/// vectors indexed by [`NetId::index`].
#[derive(Clone, Debug)]
pub struct Sta {
    arrival: Vec<Option<f64>>,
    /// The driving pin whose input determined each net's arrival.
    pred: Vec<Option<PinRef>>,
    endpoints: Vec<(Endpoint, f64, NetId)>,
}

/// Per-net fanout counts in one pass over components and ports — the
/// per-net `Netlist::fanout` scan is O(ports) each, which dominated the
/// old analysis at scale.
fn fanout_counts(nl: &Netlist) -> Vec<u32> {
    let mut fanout = vec![0u32; nl.net_slot_count()];
    for id in nl.component_ids() {
        let comp = nl.component(id).expect("live id");
        for pin in &comp.pins {
            if pin.dir == PinDir::In {
                if let Some(net) = pin.net {
                    fanout[net.index()] += 1;
                }
            }
        }
    }
    for p in nl.ports() {
        if p.dir == PinDir::Out {
            fanout[p.net.index()] += 1;
        }
    }
    fanout
}

/// Recomputes one combinational component: reads input arrivals, writes
/// output-net arrivals and predecessors. Mirrors the classic loop exactly
/// (worst input + per-pin delay, plus fanout-scaled load delay per
/// output).
fn propagate_component(
    nl: &Netlist,
    id: ComponentId,
    arrival: &mut [Option<f64>],
    pred: &mut [Option<PinRef>],
    fanout: &[u32],
) {
    let Ok(comp) = nl.component(id) else { return };
    let mut worst: Option<(f64, PinRef)> = None;
    let mut input_index = 0usize;
    for (pin_idx, pin) in comp.pins.iter().enumerate() {
        if pin.dir != PinDir::In {
            continue;
        }
        let a = pin.net.and_then(|n| arrival[n.index()]).unwrap_or(0.0)
            + input_pin_delay(&comp.kind, input_index);
        input_index += 1;
        if worst.is_none_or(|(w, _)| a > w) {
            worst = Some((a, PinRef::new(id, pin_idx as u16)));
        }
    }
    let (base, through) = worst.unwrap_or((
        0.0,
        PinRef::new(id, 0), // source-like component (constants)
    ));
    let ld = load_delay(&comp.kind);
    for pin in &comp.pins {
        if pin.dir != PinDir::Out {
            continue;
        }
        if let Some(net) = pin.net {
            let a = base + ld * f64::from(fanout[net.index()]);
            // Max-accumulate: a net driven by several sources (or seeded
            // at 0 by an input port) keeps the latest arrival. The
            // incremental path clears cone nets before re-propagating,
            // so decreases still take effect there.
            if arrival[net.index()].is_none_or(|cur| a > cur) {
                arrival[net.index()] = Some(a);
                pred[net.index()] = Some(through);
            }
        }
    }
}

/// Builds the endpoint list (output ports + sequential inputs) and their
/// arrivals.
fn collect_endpoints(
    nl: &Netlist,
    arrival: &[Option<f64>],
) -> Result<Vec<(Endpoint, f64, NetId)>, NetlistError> {
    let mut endpoints = Vec::new();
    for p in nl.ports() {
        if p.dir == PinDir::Out {
            let a = arrival[p.net.index()].unwrap_or(0.0);
            endpoints.push((Endpoint::Port(p.name.clone()), a, p.net));
        }
    }
    for id in nl.component_ids() {
        let comp = nl.component(id)?;
        if !comp.kind.is_sequential() {
            continue;
        }
        for (pin_idx, pin) in comp.pins.iter().enumerate() {
            if pin.dir == PinDir::In {
                if let Some(net) = pin.net {
                    let a = arrival[net.index()].unwrap_or(0.0);
                    endpoints.push((Endpoint::SeqInput(PinRef::new(id, pin_idx as u16)), a, net));
                }
            }
        }
    }
    Ok(endpoints)
}

/// Runs static timing analysis.
///
/// Launch points (arrival 0): input-port nets and sequential-element
/// outputs. Capture points: output ports and sequential-element inputs.
/// Component delays come from [`crate::model`]; each output additionally
/// pays `load_delay × fanout`.
///
/// # Errors
///
/// Propagates topological-order failures (combinational cycles).
pub fn analyze(nl: &Netlist) -> Result<Sta, NetlistError> {
    let net_cap = nl.net_slot_count();
    let mut arrival: Vec<Option<f64>> = vec![None; net_cap];
    let mut pred: Vec<Option<PinRef>> = vec![None; net_cap];
    let fanout = fanout_counts(nl);
    for p in nl.ports() {
        if p.dir == PinDir::In {
            arrival[p.net.index()] = Some(0.0);
        }
    }
    let order = nl.topo_order()?;
    for id in &order {
        let comp = nl.component(*id)?;
        if comp.kind.is_sequential() {
            for (pin_idx, pin) in comp.pins.iter().enumerate() {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        arrival[net.index()] = Some(0.0);
                        pred[net.index()] = Some(PinRef::new(*id, pin_idx as u16));
                    }
                }
            }
        }
    }
    for id in &order {
        let comp = nl.component(*id)?;
        if comp.kind.is_sequential() {
            continue;
        }
        propagate_component(nl, *id, &mut arrival, &mut pred, &fanout);
    }
    let endpoints = collect_endpoints(nl, &arrival)?;
    Ok(Sta {
        arrival,
        pred,
        endpoints,
    })
}

impl Sta {
    /// Arrival time at a net (0 if unknown).
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival
            .get(net.index())
            .copied()
            .flatten()
            .unwrap_or(0.0)
    }

    /// All endpoints with their arrival times.
    pub fn endpoints(&self) -> &[(Endpoint, f64, NetId)] {
        &self.endpoints
    }

    /// The worst (latest) endpoint.
    pub fn worst(&self) -> Option<(&Endpoint, f64)> {
        self.endpoints
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("arrivals are not NaN"))
            .map(|(e, a, _)| (e, *a))
    }

    /// Worst combinational delay of the design (0 for empty designs).
    pub fn worst_delay(&self) -> f64 {
        self.worst().map_or(0.0, |(_, a)| a)
    }

    /// Reconstructs the component chain of the worst path into `endpoint`
    /// (from launch to capture).
    pub fn critical_path_components(&self, nl: &Netlist, end_net: NetId) -> Vec<ComponentId> {
        let mut out = Vec::new();
        let mut net = end_net;
        let mut guard = 0usize;
        while let Some(pin) = self.pred.get(net.index()).copied().flatten().as_ref() {
            guard += 1;
            if guard > nl.component_count() + 2 {
                break;
            }
            let Ok(comp) = nl.component(pin.component) else {
                break;
            };
            out.push(pin.component);
            if comp.kind.is_sequential() {
                break; // reached a launch point
            }
            // Continue from the net feeding the recorded input pin.
            match comp.pins.get(pin.pin as usize).and_then(|p| p.net) {
                Some(prev) if prev != net => net = prev,
                _ => break,
            }
        }
        out.reverse();
        out
    }

    /// Endpoints within `margin` of the worst arrival — the critical-path
    /// set of Fig. 8.
    pub fn critical_endpoints(&self, margin: f64) -> Vec<(&Endpoint, f64, NetId)> {
        let worst = self.worst_delay();
        self.endpoints
            .iter()
            .filter(|(_, a, _)| *a >= worst - margin)
            .map(|(e, a, n)| (e, *a, *n))
            .collect()
    }

    /// Required-time map given per-endpoint required times; nets not on any
    /// constrained cone get `f64::INFINITY`.
    pub fn required_times(
        &self,
        nl: &Netlist,
        required_at: impl Fn(&Endpoint) -> Option<f64>,
    ) -> HashMap<NetId, f64> {
        let mut required: HashMap<NetId, f64> = HashMap::new();
        for (e, _, net) in &self.endpoints {
            if let Some(r) = required_at(e) {
                let entry = required.entry(*net).or_insert(f64::INFINITY);
                *entry = entry.min(r);
            }
        }
        // Backward propagation over the reversed topological order.
        let Ok(order) = nl.topo_order() else {
            return required;
        };
        for id in order.iter().rev() {
            let Ok(comp) = nl.component(*id) else {
                continue;
            };
            if comp.kind.is_sequential() {
                continue;
            }
            // Required at the component's output nets.
            let mut out_req = f64::INFINITY;
            for pin in &comp.pins {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        out_req = out_req.min(required.get(&net).copied().unwrap_or(f64::INFINITY));
                    }
                }
            }
            if out_req == f64::INFINITY {
                continue;
            }
            let mut input_index = 0usize;
            for pin in &comp.pins {
                if pin.dir != PinDir::In {
                    continue;
                }
                let d = input_pin_delay(&comp.kind, input_index);
                input_index += 1;
                if let Some(net) = pin.net {
                    let load = load_delay(&comp.kind) * nl.fanout(net) as f64;
                    let r = out_req - d - load;
                    let entry = required.entry(net).or_insert(f64::INFINITY);
                    *entry = entry.min(r);
                }
            }
        }
        required
    }

    /// Slack of a net under a required-time map.
    pub fn slack(&self, net: NetId, required: &HashMap<NetId, f64>) -> f64 {
        required.get(&net).copied().unwrap_or(f64::INFINITY) - self.arrival(net)
    }
}

/// Incrementally maintained timing analysis.
///
/// Holds the latest [`Sta`] plus the dense helper tables needed to
/// re-propagate arrivals. After a netlist transaction (or its undo),
/// [`IncrementalSta::refresh`] re-propagates only the fan-out cone of the
/// touched components/nets — a levelized worklist over the cone — instead
/// of re-running [`analyze`] over the whole design. Results are exactly
/// equal to a from-scratch [`analyze`] (property-tested); pathological
/// structures (multi-driven nets) fall back to a full rebuild.
#[derive(Clone, Debug)]
pub struct IncrementalSta {
    sta: Sta,
    fanout: Vec<u32>,
    /// Output-port fanout contribution per net (ports are immutable
    /// during optimization; `ports_len` guards that assumption).
    port_out: Vec<u32>,
    /// Whether an input port drives each net.
    port_in: Vec<bool>,
    ports_len: usize,
    /// Sequential components, ascending — the endpoint structure cache.
    seq_comps: Vec<ComponentId>,
    /// Refresh statistics: components re-propagated incrementally.
    pub incremental_props: u64,
    /// Refresh statistics: full rebuilds taken.
    pub full_rebuilds: u64,
}

impl IncrementalSta {
    /// Analyzes from scratch and caches the helper tables.
    ///
    /// # Errors
    ///
    /// Propagates [`analyze`] failures (combinational cycles).
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        let mut s = Self {
            sta: Sta {
                arrival: Vec::new(),
                pred: Vec::new(),
                endpoints: Vec::new(),
            },
            fanout: Vec::new(),
            port_out: Vec::new(),
            port_in: Vec::new(),
            ports_len: 0,
            seq_comps: Vec::new(),
            incremental_props: 0,
            full_rebuilds: 0,
        };
        s.rebuild(nl)?;
        Ok(s)
    }

    /// The current analysis.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Full re-analysis, refreshing every cached table.
    ///
    /// # Errors
    ///
    /// Propagates [`analyze`] failures.
    pub fn rebuild(&mut self, nl: &Netlist) -> Result<(), NetlistError> {
        self.full_rebuilds += 1;
        obs_full_rebuilds().inc();
        self.sta = analyze(nl)?;
        self.fanout = fanout_counts(nl);
        let net_cap = nl.net_slot_count();
        self.port_out = vec![0; net_cap];
        self.port_in = vec![false; net_cap];
        for p in nl.ports() {
            match p.dir {
                PinDir::Out => self.port_out[p.net.index()] += 1,
                PinDir::In => self.port_in[p.net.index()] = true,
            }
        }
        self.ports_len = nl.ports().len();
        self.seq_comps = nl
            .component_ids()
            .filter(|&id| nl.component(id).is_ok_and(|c| c.kind.is_sequential()))
            .collect();
        Ok(())
    }

    /// Re-propagates the fan-out cone of `touched` after a netlist edit
    /// (or after undoing one — the same touch set applies).
    ///
    /// # Errors
    ///
    /// Propagates analysis failures (combinational cycles); the state is
    /// rebuilt from scratch when the incremental path cannot apply.
    pub fn refresh(&mut self, nl: &Netlist, touched: &TouchSet) -> Result<(), NetlistError> {
        if touched.is_empty() {
            return Ok(());
        }
        obs_refreshes().inc();
        // Ports changed (never happens inside rule transactions): the
        // cached port tables are stale, rebuild.
        if nl.ports().len() != self.ports_len {
            return self.rebuild(nl);
        }
        let net_cap = nl.net_slot_count();
        self.sta.arrival.resize(net_cap, None);
        self.sta.pred.resize(net_cap, None);
        self.fanout.resize(net_cap, 0);
        self.port_out.resize(net_cap, 0);
        self.port_in.resize(net_cap, false);

        // Seed set: touched combinational components, drivers and loads
        // of touched nets; sequential touches re-seed their outputs.
        let mut seeds: Vec<ComponentId> = Vec::new();
        let mut endpoint_dirty = false;
        for &id in &touched.components {
            match nl.component(id) {
                Err(_) => endpoint_dirty = true, // removed component
                Ok(c) => {
                    if c.kind.is_sequential() {
                        self.seq_comps.push(id);
                        endpoint_dirty = true;
                        for (pin_idx, pin) in c.pins.iter().enumerate() {
                            if pin.dir == PinDir::Out {
                                if let Some(net) = pin.net {
                                    self.recount_fanout(nl, net);
                                    self.sta.arrival[net.index()] = Some(0.0);
                                    self.sta.pred[net.index()] =
                                        Some(PinRef::new(id, pin_idx as u16));
                                    self.seed_loads(nl, net, &mut seeds);
                                }
                            }
                        }
                    } else {
                        // A kind change may have made a former sequential
                        // component combinational: drop it from the
                        // endpoint cache.
                        if self.seq_comps.contains(&id) {
                            endpoint_dirty = true;
                        }
                        seeds.push(id);
                    }
                }
            }
        }
        for &n in &touched.nets {
            if nl.net(n).is_err() {
                // Removed net: clear its slots.
                if n.index() < net_cap {
                    self.sta.arrival[n.index()] = None;
                    self.sta.pred[n.index()] = None;
                    self.fanout[n.index()] = 0;
                }
                continue;
            }
            self.recount_fanout(nl, n);
            match nl.driver(n) {
                Some(d) => {
                    let comp = nl.component(d.component)?;
                    if comp.kind.is_sequential() {
                        self.sta.arrival[n.index()] = Some(0.0);
                        self.sta.pred[n.index()] = Some(d);
                        self.seed_loads(nl, n, &mut seeds);
                    } else {
                        seeds.push(d.component);
                    }
                }
                None => {
                    self.sta.arrival[n.index()] = if self.port_in[n.index()] {
                        Some(0.0)
                    } else {
                        None
                    };
                    self.sta.pred[n.index()] = None;
                    self.seed_loads(nl, n, &mut seeds);
                }
            }
        }
        if endpoint_dirty {
            self.seq_comps.sort();
            self.seq_comps.dedup();
            self.seq_comps
                .retain(|&id| nl.component(id).is_ok_and(|c| c.kind.is_sequential()));
        }

        // Downstream cone of the seeds (combinational components only).
        let comp_cap = nl.component_slot_count();
        let mut in_cone = vec![false; comp_cap];
        let mut cone: Vec<ComponentId> = Vec::new();
        let mut stack = seeds;
        while let Some(id) = stack.pop() {
            let Ok(comp) = nl.component(id) else { continue };
            if comp.kind.is_sequential() || std::mem::replace(&mut in_cone[id.index()], true) {
                continue;
            }
            cone.push(id);
            for pin in &comp.pins {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        // Multi-driven nets break the recompute model.
                        if self.driver_count(nl, net) > 1 {
                            return self.rebuild(nl);
                        }
                        for load in nl.loads(net) {
                            stack.push(load.component);
                        }
                    }
                }
            }
        }

        // Levelize the cone (Kahn over in-cone edges only).
        let mut cone_pos = vec![usize::MAX; comp_cap];
        for (i, id) in cone.iter().enumerate() {
            cone_pos[id.index()] = i;
        }
        let mut indegree = vec![0u32; cone.len()];
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); cone.len()];
        for (i, id) in cone.iter().enumerate() {
            let comp = nl.component(*id)?;
            for pin in &comp.pins {
                if pin.dir != PinDir::In {
                    continue;
                }
                if let Some(net) = pin.net {
                    if let Some(d) = nl.driver(net) {
                        let j = cone_pos[d.component.index()];
                        // Self-edges count too: a component feeding its
                        // own input is a combinational cycle, and the
                        // Kahn pass below must fail on it exactly as the
                        // from-scratch topological sort would.
                        if j != usize::MAX {
                            edges[j].push(i as u32);
                            indegree[i] += 1;
                        }
                    }
                }
            }
        }
        // Clear the cone's output nets so decreases propagate, re-seeding
        // input-port-driven nets at 0.
        for id in &cone {
            let comp = nl.component(*id)?;
            for pin in &comp.pins {
                if pin.dir == PinDir::Out {
                    if let Some(net) = pin.net {
                        self.sta.arrival[net.index()] = if self.port_in[net.index()] {
                            Some(0.0)
                        } else {
                            None
                        };
                        self.sta.pred[net.index()] = None;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..cone.len()).filter(|&i| indegree[i] == 0).collect();
        let mut processed = 0usize;
        while let Some(i) = queue.pop() {
            processed += 1;
            propagate_component(
                nl,
                cone[i],
                &mut self.sta.arrival,
                &mut self.sta.pred,
                &self.fanout,
            );
            self.incremental_props += 1;
            for &j in &edges[i] {
                indegree[j as usize] -= 1;
                if indegree[j as usize] == 0 {
                    queue.push(j as usize);
                }
            }
        }
        if processed != cone.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        // Refresh endpoint arrivals (structure from the cached seq list).
        self.sta.endpoints.clear();
        for p in nl.ports() {
            if p.dir == PinDir::Out {
                let a = self.sta.arrival[p.net.index()].unwrap_or(0.0);
                self.sta
                    .endpoints
                    .push((Endpoint::Port(p.name.clone()), a, p.net));
            }
        }
        for &id in &self.seq_comps {
            let comp = nl.component(id)?;
            for (pin_idx, pin) in comp.pins.iter().enumerate() {
                if pin.dir == PinDir::In {
                    if let Some(net) = pin.net {
                        let a = self.sta.arrival[net.index()].unwrap_or(0.0);
                        self.sta.endpoints.push((
                            Endpoint::SeqInput(PinRef::new(id, pin_idx as u16)),
                            a,
                            net,
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn recount_fanout(&mut self, nl: &Netlist, net: NetId) {
        self.fanout[net.index()] = nl.loads(net).len() as u32 + self.port_out[net.index()];
    }

    fn driver_count(&self, nl: &Netlist, net: NetId) -> usize {
        let Ok(n) = nl.net(net) else { return 0 };
        n.connections
            .iter()
            .filter(|p| {
                nl.component(p.component)
                    .ok()
                    .and_then(|c| c.pins.get(p.pin as usize))
                    .is_some_and(|pin| pin.dir == PinDir::Out)
            })
            .count()
    }

    fn seed_loads(&self, nl: &Netlist, net: NetId, seeds: &mut Vec<ComponentId>) {
        for load in nl.loads(net) {
            seeds.push(load.component);
        }
    }
}

/// Selects the point of optimization per §4: "the component which the most
/// critical paths pass through", ties broken by "the component … closest
/// to an external input".
pub fn point_of_optimization(nl: &Netlist, sta: &Sta, margin: f64) -> Option<ComponentId> {
    let mut counts: HashMap<ComponentId, usize> = HashMap::new();
    for (_, _, net) in sta.critical_endpoints(margin) {
        for comp in sta.critical_path_components(nl, net) {
            if nl.component(comp).is_ok_and(|c| !c.kind.is_sequential()) {
                *counts.entry(comp).or_insert(0) += 1;
            }
        }
    }
    // Criterion 1: max path count. Criterion 2: earliest output arrival
    // (closest to an external input).
    counts
        .into_iter()
        .map(|(id, count)| {
            let out_arrival = nl
                .component(id)
                .ok()
                .and_then(|c| {
                    c.pins
                        .iter()
                        .find(|p| p.dir == PinDir::Out)
                        .and_then(|p| p.net)
                        .map(|n| sta.arrival(n))
                })
                .unwrap_or(f64::MAX);
            (id, count, out_arrival)
        })
        .max_by(|a, b| {
            a.1.cmp(&b.1)
                .then(b.2.partial_cmp(&a.2).expect("arrivals are not NaN"))
        })
        .map(|(id, _, _)| id)
}

/// True when the component lies on the worst critical path.
pub fn on_critical_path(nl: &Netlist, sta: &Sta, id: ComponentId) -> bool {
    let Some((_, _)) = sta.worst() else {
        return false;
    };
    let worst_net = sta
        .endpoints()
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("not NaN"))
        .map(|(_, _, n)| *n);
    match worst_net {
        Some(n) => sta.critical_path_components(nl, n).contains(&id),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist};

    /// in -> INV -> INV -> out, plus a short side branch.
    fn chain() -> (Netlist, ComponentId, ComponentId, ComponentId) {
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y = nl.add_net("y");
        let z = nl.add_net("z");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g3 = nl.add_component(
            "g3",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.connect_named(g3, "A0", a).unwrap();
        nl.connect_named(g3, "Y", z).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        nl.add_port("z", PinDir::Out, z);
        (nl, g1, g2, g3)
    }

    #[test]
    fn chain_has_two_gate_path() {
        let (nl, g1, g2, _) = chain();
        let sta = analyze(&nl).unwrap();
        let (e, a) = sta.worst().unwrap();
        assert_eq!(*e, Endpoint::Port("y".into()));
        assert!(a > 0.0);
        let worst_net = nl.port("y").unwrap().net;
        let path = sta.critical_path_components(&nl, worst_net);
        assert_eq!(path, vec![g1, g2]);
    }

    #[test]
    fn point_of_optimization_picks_shared_component() {
        // Two outputs sharing g1: g1 is on both critical paths.
        let mut nl = Netlist::new("c");
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        let g3 = nl.add_component(
            "g3",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "Y", m).unwrap();
        nl.connect_named(g2, "A0", m).unwrap();
        nl.connect_named(g2, "Y", y1).unwrap();
        nl.connect_named(g3, "A0", m).unwrap();
        nl.connect_named(g3, "Y", y2).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y1", PinDir::Out, y1);
        nl.add_port("y2", PinDir::Out, y2);
        let sta = analyze(&nl).unwrap();
        assert_eq!(point_of_optimization(&nl, &sta, 0.01), Some(g1));
    }

    #[test]
    fn sequential_cuts_paths() {
        let mut nl = Netlist::new("s");
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        let y = nl.add_net("y");
        let clk = nl.add_net("clk");
        let ff = nl.add_component(
            "ff",
            ComponentKind::Generic(GenericMacro::Dff {
                set: false,
                reset: false,
                enable: false,
            }),
        );
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(ff, "D", d).unwrap();
        nl.connect_named(ff, "CLK", clk).unwrap();
        nl.connect_named(ff, "Q", q).unwrap();
        nl.connect_named(g, "A0", q).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("d", PinDir::In, d);
        nl.add_port("clk", PinDir::In, clk);
        nl.add_port("y", PinDir::Out, y);
        let sta = analyze(&nl).unwrap();
        // Endpoints: port y, plus the DFF's D and CLK inputs.
        assert_eq!(sta.endpoints().len(), 3);
        // Path to y starts at the DFF output (arrival 0) + one inverter.
        let y_net = nl.port("y").unwrap().net;
        assert!(sta.arrival(y_net) > 0.0);
        assert!(sta.arrival(y_net) < 1.0);
    }

    #[test]
    fn required_and_slack() {
        let (nl, _, _, _) = chain();
        let sta = analyze(&nl).unwrap();
        let req = sta.required_times(&nl, |e| match e {
            Endpoint::Port(p) if p == "y" => Some(10.0),
            _ => None,
        });
        let y_net = nl.port("y").unwrap().net;
        let slack = sta.slack(y_net, &req);
        assert!(slack > 0.0 && slack < 10.0);
        // Unconstrained output has infinite slack.
        let z_net = nl.port("z").unwrap().net;
        assert_eq!(sta.slack(z_net, &req), f64::INFINITY);
    }
}
