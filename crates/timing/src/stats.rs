//! The statistics generator of Fig. 11: area / power / delay / size
//! numbers for a design, used by the microarchitecture critic's feedback
//! loop and by every report in the bench harness.

use crate::model::estimate_kind;
use crate::sta::analyze;
use milo_netlist::{ComponentKind, Netlist, NetlistError};

/// Aggregate statistics of a design.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DesignStats {
    /// Total area in cell units.
    pub area: f64,
    /// Total static power in mA.
    pub power: f64,
    /// Number of components.
    pub cells: usize,
    /// Worst combinational path delay in ns.
    pub delay: f64,
}

impl DesignStats {
    /// Percentage improvement of `self` over `baseline` for delay
    /// (positive = faster).
    pub fn delay_improvement_pct(&self, baseline: &DesignStats) -> f64 {
        if baseline.delay == 0.0 {
            return 0.0;
        }
        (baseline.delay - self.delay) / baseline.delay * 100.0
    }

    /// Percentage improvement of `self` over `baseline` for area.
    pub fn area_improvement_pct(&self, baseline: &DesignStats) -> f64 {
        if baseline.area == 0.0 {
            return 0.0;
        }
        (baseline.area - self.area) / baseline.area * 100.0
    }
}

/// Computes the design statistics (Fig. 11's statistics generator).
///
/// # Errors
///
/// Fails on combinational cycles (the timing pass needs a topological
/// order).
pub fn statistics(nl: &Netlist) -> Result<DesignStats, NetlistError> {
    let sta = analyze(nl)?;
    statistics_with_sta(nl, &sta)
}

/// [`statistics`] reusing an existing timing analysis — the rules
/// engine's accept/undo loop maintains an incremental STA, so the area,
/// power and cell totals are the only parts recomputed here.
///
/// # Errors
///
/// Fails when unexpanded hierarchy is present.
pub fn statistics_with_sta(nl: &Netlist, sta: &crate::Sta) -> Result<DesignStats, NetlistError> {
    let mut area = 0.0;
    let mut power = 0.0;
    let mut cells = 0usize;
    for id in nl.component_ids() {
        let comp = nl.component(id)?;
        if matches!(comp.kind, ComponentKind::Instance { .. }) {
            return Err(NetlistError::HierarchyPresent(id));
        }
        let e = estimate_kind(&comp.kind);
        area += e.area;
        power += e.power;
        cells += 1;
    }
    Ok(DesignStats {
        area,
        power,
        cells,
        delay: sta.worst_delay(),
    })
}

/// Two-input-equivalent gate count — the complexity measure of Fig. 19
/// ("Complexity (gates)"). MSI macros are weighted by the gate content of
/// their discrete equivalents (an ADD4 macro *replaces* ~24 gates even if
/// its silicon is denser).
pub fn gate_equivalents(nl: &Netlist) -> f64 {
    use milo_netlist::{CellFunction, GateFn, GenericMacro};
    fn gate_cost(f: GateFn, n: u8) -> f64 {
        match f {
            GateFn::Inv | GateFn::Buf => 0.5,
            GateFn::Xor | GateFn::Xnor => 3.0 * f64::from(n.saturating_sub(1)).max(1.0),
            _ => f64::from(n.saturating_sub(1)).max(1.0),
        }
    }
    let kind_cost = |kind: &ComponentKind| -> f64 {
        match kind {
            ComponentKind::Generic(m) => match *m {
                GenericMacro::Gate(f, n) => gate_cost(f, n),
                GenericMacro::Vdd | GenericMacro::Vss => 0.0,
                GenericMacro::Mux { selects } => 3.0 * f64::from((1u8 << selects) - 1),
                GenericMacro::Decoder { inputs } => f64::from(1u8 << inputs) + f64::from(inputs),
                GenericMacro::Adder { bits, cla } => f64::from(bits) * if cla { 8.0 } else { 6.0 },
                GenericMacro::Comparator { bits } => 5.0 * f64::from(bits),
                GenericMacro::Counter { bits } => 10.0 * f64::from(bits),
                GenericMacro::Dff { set, reset, enable } => {
                    6.0 + f64::from(u8::from(set) + u8::from(reset) + u8::from(enable))
                }
                GenericMacro::Latch { set, reset } => {
                    4.0 + f64::from(u8::from(set) + u8::from(reset))
                }
            },
            ComponentKind::Tech(c) => match &c.function {
                CellFunction::Gate(f, n) => gate_cost(*f, *n),
                CellFunction::Table(tt) => f64::from(tt.vars()),
                CellFunction::Mux { selects } => 3.0 * f64::from((1u8 << selects) - 1),
                CellFunction::Dff { set, reset, enable } => {
                    6.0 + f64::from(u8::from(*set) + u8::from(*reset) + u8::from(*enable))
                }
                CellFunction::MuxDff { selects } => 6.0 + 3.0 * f64::from((1u8 << selects) - 1),
                CellFunction::Latch { set, reset } => {
                    4.0 + f64::from(u8::from(*set) + u8::from(*reset))
                }
                CellFunction::Const(_) => 0.0,
                CellFunction::Adder { bits, cla } => {
                    f64::from(*bits) * if *cla { 8.0 } else { 6.0 }
                }
                CellFunction::Decoder { inputs } => f64::from(1u8 << *inputs) + f64::from(*inputs),
                CellFunction::Comparator { bits } => 5.0 * f64::from(*bits),
                CellFunction::Counter { bits } => 10.0 * f64::from(*bits),
            },
            // Micro components / instances: fall back to the area estimate.
            other => estimate_kind(other).area / 1.4,
        }
    };
    nl.component_ids()
        .filter_map(|id| nl.component(id).ok())
        .map(|c| kind_cost(&c.kind))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{GateFn, GenericMacro, PinDir};

    fn small() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn stats_accumulate() {
        let nl = small();
        let s = statistics(&nl).unwrap();
        assert_eq!(s.cells, 1);
        assert!(s.area > 0.0 && s.power > 0.0 && s.delay > 0.0);
    }

    #[test]
    fn improvement_percentages() {
        let base = DesignStats {
            area: 10.0,
            power: 1.0,
            cells: 5,
            delay: 4.0,
        };
        let opt = DesignStats {
            area: 8.0,
            power: 1.0,
            cells: 4,
            delay: 3.0,
        };
        assert!((opt.delay_improvement_pct(&base) - 25.0).abs() < 1e-9);
        assert!((opt.area_improvement_pct(&base) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gate_equivalents_positive() {
        assert!(gate_equivalents(&small()) > 0.0);
    }
}
