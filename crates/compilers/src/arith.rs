//! Compilers for arithmetic units and comparators (Fig. 12
//! `ARITHMETIC UNIT` and `COMPARATOR`).
//!
//! Arithmetic units are built from the generic ADD1/ADD4/ADD4CLA macros
//! ("a 32-bit adder can be decomposed into eight 4-bit adders", §5) with a
//! B-operand conditioning network that selects between B, !B, 0 and 1 to
//! realize add / subtract / increment / decrement on one carry chain.

use crate::helpers::{gate, input_ports, inv, net_bus, output_ports, vdd, vss};
use crate::{design_name, CompileError};
use milo_netlist::{
    ArithOp, ArithOps, CarryMode, CmpOp, ComponentKind, DesignDb, GateFn, GenericMacro,
    MicroComponent, NetId, Netlist, PinDir,
};

/// Compiles an arithmetic unit.
pub(crate) fn compile_arith(
    bits: u8,
    ops: ArithOps,
    mode: CarryMode,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::ArithmeticUnit { bits, ops, mode };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    let op_list = ops.ops();
    if bits == 0 || op_list.is_empty() {
        return Err(CompileError::InvalidParams(
            "arithmetic unit needs bits >= 1 and at least one operation".into(),
        ));
    }
    let mut nl = Netlist::new(name.clone());
    let a = net_bus(&mut nl, "A", bits);
    let b = if ops.needs_b() {
        net_bus(&mut nl, "B", bits)
    } else {
        Vec::new()
    };
    let op_pins = if op_list.len() > 1 {
        net_bus(&mut nl, "OP", ops.select_pins())
    } else {
        Vec::new()
    };
    let cin_net = nl.add_net("CIN");

    // Conditioned B operand and carry-in.
    let (b_cond, cin_cond) = condition_operand(&mut nl, bits, &op_list, &b, &op_pins, cin_net);

    // Carry chain out of ADD4/ADD4CLA/ADD1 slices.
    let a_nets: Vec<NetId> = a.iter().map(|(_, n)| *n).collect();
    let (sums, cout) = adder_chain(&mut nl, &a_nets, &b_cond, cin_cond, mode);

    input_ports(&mut nl, &a);
    input_ports(&mut nl, &b);
    input_ports(&mut nl, &op_pins);
    nl.add_port("CIN", PinDir::In, cin_net);
    let outs: Vec<(String, NetId)> = sums
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("S{i}"), *s))
        .collect();
    output_ports(&mut nl, &outs);
    nl.add_port("COUT", PinDir::Out, cout);
    db.insert(nl);
    Ok(name)
}

/// Per-operation B-bit source.
fn b_source(nl: &mut Netlist, op: ArithOp, b_bit: Option<NetId>, bit: usize) -> NetId {
    match op {
        ArithOp::Add => b_bit.expect("add requires a B bus"),
        ArithOp::Sub => {
            let b = b_bit.expect("sub requires a B bus");
            inv(nl, b, &format!("nb{bit}"))
        }
        ArithOp::Inc => vss(nl),
        ArithOp::Dec => vdd(nl),
    }
}

/// Per-operation carry-in source.
fn cin_source(nl: &mut Netlist, op: ArithOp, cin: NetId) -> NetId {
    match op {
        ArithOp::Add | ArithOp::Sub => cin,
        ArithOp::Inc => vdd(nl),
        ArithOp::Dec => vss(nl),
    }
}

/// Builds the operand-conditioning network, returning the conditioned B
/// bits and carry-in.
fn condition_operand(
    nl: &mut Netlist,
    bits: u8,
    op_list: &[ArithOp],
    b: &[(String, NetId)],
    op_pins: &[(String, NetId)],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    let b_bit = |i: usize| b.get(i).map(|(_, n)| *n);
    if op_list.len() == 1 {
        let op = op_list[0];
        let b_cond = (0..bits as usize)
            .map(|i| b_source(nl, op, b_bit(i), i))
            .collect();
        let cin_cond = cin_source(nl, op, cin);
        return (b_cond, cin_cond);
    }
    // Special case the classic add/sub unit: B ^ OP, carry-in passes.
    if op_list == [ArithOp::Add, ArithOp::Sub] {
        let sel = op_pins[0].1;
        let b_cond = (0..bits as usize)
            .map(|i| {
                gate(
                    nl,
                    GateFn::Xor,
                    &[b_bit(i).expect("add/sub has B"), sel],
                    &format!("bx{i}"),
                )
            })
            .collect();
        return (b_cond, cin);
    }
    // General: a mux per bit over per-op sources (padded with the last op
    // so out-of-range selects clamp, matching the simulator).
    let selects = if op_list.len() <= 2 { 1 } else { 2 };
    let ways = 1usize << selects;
    let mut b_cond = Vec::with_capacity(bits as usize);
    for i in 0..bits as usize {
        let mut data = Vec::with_capacity(ways);
        for k in 0..ways {
            let op = op_list[k.min(op_list.len() - 1)];
            data.push(b_source(nl, op, b_bit(i), i));
        }
        let sels: Vec<NetId> = op_pins.iter().take(selects).map(|(_, n)| *n).collect();
        b_cond.push(crate::datapath::mux_tree(
            nl,
            &data,
            &sels,
            &format!("bm{i}"),
        ));
    }
    let mut cin_data = Vec::with_capacity(ways);
    for k in 0..ways {
        let op = op_list[k.min(op_list.len() - 1)];
        cin_data.push(cin_source(nl, op, cin));
    }
    let sels: Vec<NetId> = op_pins.iter().take(selects).map(|(_, n)| *n).collect();
    let cin_cond = crate::datapath::mux_tree(nl, &cin_data, &sels, "cm");
    (b_cond, cin_cond)
}

/// Chains ADD4/ADD4CLA and ADD1 slices; returns (sum bits, carry out).
pub(crate) fn adder_chain(
    nl: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    mode: CarryMode,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len());
    let bits = a.len();
    let mut sums = Vec::with_capacity(bits);
    let mut carry = cin;
    let mut i = 0usize;
    let mut slice = 0usize;
    while i < bits {
        let take = if bits - i >= 4 { 4 } else { 1 };
        let macro_ = match (take, mode) {
            (4, CarryMode::CarryLookahead) => GenericMacro::Adder { bits: 4, cla: true },
            (4, CarryMode::Ripple) => GenericMacro::Adder {
                bits: 4,
                cla: false,
            },
            _ => GenericMacro::Adder {
                bits: 1,
                cla: false,
            },
        };
        let add = nl.add_component(format!("add{slice}"), ComponentKind::Generic(macro_));
        for k in 0..take {
            nl.connect_named(add, &format!("A{k}"), a[i + k])
                .expect("fresh adder pin");
            nl.connect_named(add, &format!("B{k}"), b[i + k])
                .expect("fresh adder pin");
        }
        nl.connect_named(add, "CIN", carry)
            .expect("fresh adder pin");
        for k in 0..take {
            let s = nl.add_net(format!("s{}", i + k));
            nl.connect_named(add, &format!("S{k}"), s)
                .expect("fresh adder pin");
            sums.push(s);
        }
        let co = nl.add_net(format!("c{slice}"));
        nl.connect_named(add, "COUT", co).expect("fresh adder pin");
        carry = co;
        i += take;
        slice += 1;
    }
    (sums, carry)
}

/// Compiles a comparator for a single predicate, built from generic
/// CMP4/CMP2 slices combined most-significant-first.
pub(crate) fn compile_comparator(
    bits: u8,
    function: CmpOp,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Comparator { bits, function };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 {
        return Err(CompileError::InvalidParams(
            "comparator needs bits >= 1".into(),
        ));
    }
    let mut nl = Netlist::new(name.clone());
    let a = net_bus(&mut nl, "A", bits);
    let b = net_bus(&mut nl, "B", bits);
    let a_nets: Vec<NetId> = a.iter().map(|(_, n)| *n).collect();
    let b_nets: Vec<NetId> = b.iter().map(|(_, n)| *n).collect();

    // Build per-slice (eq, lt, gt) triples, LSB slice first.
    let mut slices: Vec<(NetId, NetId, NetId)> = Vec::new();
    let mut i = 0usize;
    let mut s = 0usize;
    while i < bits as usize {
        let take = if bits as usize - i >= 4 {
            4
        } else if bits as usize - i >= 2 {
            2
        } else {
            1
        };
        let triple = if take == 1 {
            let na = inv(&mut nl, a_nets[i], &format!("na{s}"));
            let nb = inv(&mut nl, b_nets[i], &format!("nb{s}"));
            let eq = gate(
                &mut nl,
                GateFn::Xnor,
                &[a_nets[i], b_nets[i]],
                &format!("eq{s}"),
            );
            let lt = gate(&mut nl, GateFn::And, &[na, b_nets[i]], &format!("lt{s}"));
            let gt = gate(&mut nl, GateFn::And, &[a_nets[i], nb], &format!("gt{s}"));
            (eq, lt, gt)
        } else {
            let cmp = nl.add_component(
                format!("cmp{s}"),
                ComponentKind::Generic(GenericMacro::Comparator { bits: take as u8 }),
            );
            for k in 0..take {
                nl.connect_named(cmp, &format!("A{k}"), a_nets[i + k])
                    .expect("fresh cmp pin");
                nl.connect_named(cmp, &format!("B{k}"), b_nets[i + k])
                    .expect("fresh cmp pin");
            }
            let eq = nl.add_net(format!("eq{s}"));
            let lt = nl.add_net(format!("lt{s}"));
            let gt = nl.add_net(format!("gt{s}"));
            nl.connect_named(cmp, "EQ", eq).expect("fresh cmp pin");
            nl.connect_named(cmp, "LT", lt).expect("fresh cmp pin");
            nl.connect_named(cmp, "GT", gt).expect("fresh cmp pin");
            (eq, lt, gt)
        };
        slices.push(triple);
        i += take;
        s += 1;
    }
    // Combine, most significant slice dominating.
    let (mut eq, mut lt, mut gt) = slices.pop().expect("at least one slice");
    let mut c = 0usize;
    while let Some((eq_lo, lt_lo, gt_lo)) = slices.pop() {
        let lt_low = gate(&mut nl, GateFn::And, &[eq, lt_lo], &format!("ltl{c}"));
        let gt_low = gate(&mut nl, GateFn::And, &[eq, gt_lo], &format!("gtl{c}"));
        lt = gate(&mut nl, GateFn::Or, &[lt, lt_low], &format!("ltc{c}"));
        gt = gate(&mut nl, GateFn::Or, &[gt, gt_low], &format!("gtc{c}"));
        eq = gate(&mut nl, GateFn::And, &[eq, eq_lo], &format!("eqc{c}"));
        c += 1;
    }
    let f = match function {
        CmpOp::Eq => eq,
        CmpOp::Lt => lt,
        CmpOp::Gt => gt,
        CmpOp::Ne => inv(&mut nl, eq, "ne"),
        CmpOp::Le => inv(&mut nl, gt, "le"),
        CmpOp::Ge => inv(&mut nl, lt, "ge"),
    };
    input_ports(&mut nl, &a);
    input_ports(&mut nl, &b);
    nl.add_port("F", PinDir::Out, f);
    db.insert(nl);
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::verify::{check_comb_equivalence, micro_wrapper};

    fn check_au(bits: u8, ops: ArithOps, mode: CarryMode) {
        let mut db = DesignDb::new();
        let micro = MicroComponent::ArithmeticUnit { bits, ops, mode };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_comb_equivalence(&micro_wrapper(micro), &flat, 4096)
            .unwrap_or_else(|e| panic!("{}: {e}", micro.describe()));
    }

    #[test]
    fn adder_ripple_and_cla() {
        check_au(4, ArithOps::ADD, CarryMode::Ripple);
        check_au(4, ArithOps::ADD, CarryMode::CarryLookahead);
        check_au(5, ArithOps::ADD, CarryMode::Ripple); // 4 + 1 slicing
    }

    #[test]
    fn add_sub_unit() {
        check_au(4, ArithOps::ADD_SUB, CarryMode::Ripple);
    }

    #[test]
    fn inc_only_unit() {
        check_au(4, ArithOps::INC, CarryMode::Ripple);
        check_au(6, ArithOps::INC, CarryMode::Ripple);
    }

    #[test]
    fn dec_only_unit() {
        let ops = ArithOps {
            dec: true,
            ..ArithOps::default()
        };
        check_au(4, ops, CarryMode::Ripple);
    }

    #[test]
    fn inc_dec_unit() {
        let ops = ArithOps {
            inc: true,
            dec: true,
            ..ArithOps::default()
        };
        check_au(3, ops, CarryMode::Ripple);
    }

    #[test]
    fn four_op_alu() {
        let ops = ArithOps {
            add: true,
            sub: true,
            inc: true,
            dec: true,
        };
        check_au(3, ops, CarryMode::Ripple);
        check_au(4, ops, CarryMode::CarryLookahead);
    }

    #[test]
    fn comparators_all_ops() {
        let mut db = DesignDb::new();
        for f in [
            CmpOp::Eq,
            CmpOp::Lt,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Ge,
            CmpOp::Ne,
        ] {
            let micro = MicroComponent::Comparator {
                bits: 5,
                function: f,
            };
            let name = compile(&micro, &mut db).unwrap();
            let flat = db.flatten(&name).unwrap();
            check_comb_equivalence(&micro_wrapper(micro), &flat, 2048)
                .unwrap_or_else(|e| panic!("{f:?}: {e}"));
        }
    }

    #[test]
    fn comparator_one_bit() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Comparator {
            bits: 1,
            function: CmpOp::Gt,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_comb_equivalence(&micro_wrapper(micro), &flat, 0).unwrap();
    }

    #[test]
    fn cla_uses_cla_macros() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::ArithmeticUnit {
            bits: 8,
            ops: ArithOps::ADD,
            mode: CarryMode::CarryLookahead,
        };
        let name = compile(&micro, &mut db).unwrap();
        let design = db.get(&name).unwrap();
        let cla_count = design
            .component_ids()
            .filter(|&id| {
                matches!(
                    design.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Generic(GenericMacro::Adder {
                        cla: true,
                        ..
                    }))
                )
            })
            .count();
        assert_eq!(
            cla_count, 2,
            "8-bit CLA adder should use two ADD4CLA slices"
        );
    }
}
