//! # milo-compilers
//!
//! The *logic compilers* of the MILO system (§6.1, Figs. 12 and 16): one
//! parameterized generator per microarchitecture component, expanding it
//! into generic SSI/MSI macros (Fig. 13) in a hierarchical fashion, with a
//! design-database cache ("see if the requested design already exists in
//! the database; if so, exit").
//!
//! The single entry point is [`compile`], which dispatches on the
//! [`MicroComponent`] variant and returns the name of the produced design
//! inside the caller's [`DesignDb`].
//!
//! # Examples
//!
//! ```
//! use milo_compilers::compile;
//! use milo_netlist::{ArithOps, CarryMode, DesignDb, MicroComponent};
//!
//! let mut db = DesignDb::new();
//! let adder = MicroComponent::ArithmeticUnit {
//!     bits: 4,
//!     ops: ArithOps::ADD,
//!     mode: CarryMode::Ripple,
//! };
//! let name = compile(&adder, &mut db)?;
//! assert!(db.contains(&name));
//! # Ok::<(), milo_compilers::CompileError>(())
//! ```

#![warn(missing_docs)]

mod arith;
mod datapath;
mod gates;
pub mod helpers;
mod storage;
pub mod verify;

use milo_netlist::{DesignDb, MicroComponent, Trigger};
use std::fmt;

/// Errors from the logic compilers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The component parameters are outside what the compiler supports.
    InvalidParams(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidParams(s) => write!(f, "invalid compiler parameters: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Canonical design-database name for a microarchitecture component.
///
/// Names are unique per parameter set so the database cache is sound.
/// The MSI-style names of Fig. 16 (`ADD4`, `MUX2:1:4`, `REG4`) are used
/// where the paper shows them.
pub fn design_name(micro: &MicroComponent) -> String {
    match *micro {
        MicroComponent::Gate { function, inputs } => {
            format!("{}{}", function.mnemonic().to_uppercase(), inputs)
        }
        MicroComponent::Multiplexor {
            bits,
            inputs,
            enable,
        } => {
            format!("MUX{inputs}:1:{bits}{}", if enable { "E" } else { "" })
        }
        MicroComponent::Decoder { bits, enable } => {
            format!(
                "DEC{bits}TO{}{}",
                1u8 << bits,
                if enable { "E" } else { "" }
            )
        }
        MicroComponent::Comparator { bits, function } => {
            format!("CMP{bits}_{function:?}").to_uppercase()
        }
        MicroComponent::LogicUnit {
            function,
            inputs,
            bits,
        } => {
            format!("LU{bits}_{}{}", function.mnemonic().to_uppercase(), inputs)
        }
        MicroComponent::ArithmeticUnit { bits, ops, mode } => {
            let mut s = format!("AU{bits}_");
            if ops.add {
                s.push('A');
            }
            if ops.sub {
                s.push('S');
            }
            if ops.inc {
                s.push('I');
            }
            if ops.dec {
                s.push('D');
            }
            s.push_str(match mode {
                milo_netlist::CarryMode::Ripple => "_RPL",
                milo_netlist::CarryMode::CarryLookahead => "_CLA",
            });
            // Fig. 16 shows the plain ripple adder as ADD4.
            if ops == milo_netlist::ArithOps::ADD && mode == milo_netlist::CarryMode::Ripple {
                return format!("ADD{bits}");
            }
            s
        }
        MicroComponent::Register {
            bits,
            trigger,
            funcs,
            ctrl,
        } => {
            let mut s = format!("REG{bits}");
            if trigger == Trigger::Latch {
                s.push('L');
            }
            s.push('_');
            if funcs.load {
                s.push('l');
            }
            if funcs.shift_left {
                s.push('<');
            }
            if funcs.shift_right {
                s.push('>');
            }
            if ctrl.set {
                s.push('S');
            }
            if ctrl.reset {
                s.push('R');
            }
            if ctrl.enable {
                s.push('E');
            }
            // Fig. 16 shows the plain load register as REG4.
            if funcs == milo_netlist::RegFunctions::LOAD
                && ctrl == milo_netlist::ControlSet::NONE
                && trigger == Trigger::EdgeTriggered
            {
                return format!("REG{bits}");
            }
            s
        }
        MicroComponent::Counter { bits, funcs, ctrl } => {
            let mut s = format!("CTR{bits}_");
            if funcs.load {
                s.push('l');
            }
            if funcs.up {
                s.push('u');
            }
            if funcs.down {
                s.push('d');
            }
            if ctrl.set {
                s.push('S');
            }
            if ctrl.reset {
                s.push('R');
            }
            if ctrl.enable {
                s.push('E');
            }
            s
        }
    }
}

/// Compiles a microarchitecture component into the design database,
/// returning the design name. A cache hit returns immediately.
///
/// # Errors
///
/// [`CompileError::InvalidParams`] when the parameters are unsupported
/// (zero widths, non-power-of-two mux inputs, multi-input inverters, …).
pub fn compile(micro: &MicroComponent, db: &mut DesignDb) -> Result<String, CompileError> {
    match *micro {
        MicroComponent::Gate { function, inputs } => gates::compile_gate(function, inputs, db),
        MicroComponent::LogicUnit {
            function,
            inputs,
            bits,
        } => gates::compile_logic_unit(function, inputs, bits, db),
        MicroComponent::Multiplexor {
            bits,
            inputs,
            enable,
        } => datapath::compile_mux(bits, inputs, enable, db),
        MicroComponent::Decoder { bits, enable } => datapath::compile_decoder(bits, enable, db),
        MicroComponent::Comparator { bits, function } => {
            arith::compile_comparator(bits, function, db)
        }
        MicroComponent::ArithmeticUnit { bits, ops, mode } => {
            arith::compile_arith(bits, ops, mode, db)
        }
        MicroComponent::Register {
            bits,
            trigger,
            funcs,
            ctrl,
        } => storage::compile_register(bits, trigger, funcs, ctrl, db),
        MicroComponent::Counter { bits, funcs, ctrl } => {
            storage::compile_counter(bits, funcs, ctrl, db)
        }
    }
}

/// Expands every [`milo_netlist::ComponentKind::Micro`] component of a
/// netlist into an instance of its compiled design, in place.
///
/// The netlist afterwards contains [`milo_netlist::ComponentKind::Instance`]
/// components; flatten through the database for a gate-level view.
///
/// # Errors
///
/// Propagates compiler and netlist errors.
pub fn expand_micro_components(
    nl: &mut milo_netlist::Netlist,
    db: &mut DesignDb,
) -> Result<(), Box<dyn std::error::Error>> {
    let micro_ids: Vec<milo_netlist::ComponentId> = nl
        .component_ids()
        .filter(|&id| {
            matches!(
                nl.component(id).map(|c| &c.kind),
                Ok(milo_netlist::ComponentKind::Micro(_))
            )
        })
        .collect();
    for id in micro_ids {
        let (micro, name, pin_nets) = {
            let comp = nl.component(id)?;
            let milo_netlist::ComponentKind::Micro(m) = &comp.kind else {
                unreachable!()
            };
            let pin_nets: Vec<(String, Option<milo_netlist::NetId>)> =
                comp.pins.iter().map(|p| (p.name.clone(), p.net)).collect();
            (*m, comp.name.clone(), pin_nets)
        };
        let design = compile(&micro, db)?;
        nl.remove_component(id)?;
        let kind = db.instance_kind(&design).expect("just compiled");
        let inst = nl.add_component(name, kind);
        for (pin, net) in pin_nets {
            if let Some(net) = net {
                nl.connect_named(inst, &pin, net)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{ArithOps, CarryMode, ComponentKind, ControlSet, PinDir, RegFunctions};

    #[test]
    fn design_names_match_fig16() {
        assert_eq!(
            design_name(&MicroComponent::ArithmeticUnit {
                bits: 4,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple
            }),
            "ADD4"
        );
        assert_eq!(
            design_name(&MicroComponent::Multiplexor {
                bits: 4,
                inputs: 2,
                enable: false
            }),
            "MUX2:1:4"
        );
        assert_eq!(
            design_name(&MicroComponent::Register {
                bits: 4,
                trigger: Trigger::EdgeTriggered,
                funcs: RegFunctions::LOAD,
                ctrl: ControlSet::NONE
            }),
            "REG4"
        );
    }

    #[test]
    fn names_distinguish_parameters() {
        let a = design_name(&MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::CarryLookahead,
        });
        let b = design_name(&MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn expand_micro_components_leaves_instances() {
        let mut nl = milo_netlist::Netlist::new("top");
        let micro = MicroComponent::ArithmeticUnit {
            bits: 4,
            ops: ArithOps::ADD,
            mode: CarryMode::Ripple,
        };
        let c = nl.add_component("au", ComponentKind::Micro(micro));
        let pins: Vec<(String, PinDir)> = nl
            .component(c)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl.add_net(pin.clone());
            nl.connect_named(c, &pin, net).unwrap();
            nl.add_port(pin, dir, net);
        }
        let mut db = DesignDb::new();
        expand_micro_components(&mut nl, &mut db).unwrap();
        assert!(nl.has_hierarchy());
        assert!(db.contains("ADD4"));
    }
}
