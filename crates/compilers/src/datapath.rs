//! Compilers for word multiplexors and decoders (Fig. 12 `MULTIPLEXOR`
//! and `DECODER`).

use crate::helpers::{gate, input_ports, net_bus, output_ports};
use crate::{design_name, CompileError};
use milo_netlist::{
    sel_bits, ComponentKind, DesignDb, GateFn, GenericMacro, MicroComponent, NetId, Netlist, PinDir,
};

/// Builds a 1-bit `n`-to-1 mux tree from generic MUX2TO1/MUX4TO1 macros.
/// `data` are the n data nets, `sel` the log2(n) select nets (LSB first).
pub(crate) fn mux_tree(nl: &mut Netlist, data: &[NetId], sel: &[NetId], prefix: &str) -> NetId {
    assert!(data.len().is_power_of_two() && data.len() >= 2);
    assert_eq!(1usize << sel.len(), data.len());
    if data.len() == 2 {
        let m = nl.add_component(
            format!("{prefix}_m2"),
            ComponentKind::Generic(GenericMacro::Mux { selects: 1 }),
        );
        nl.connect_named(m, "D0", data[0]).expect("fresh mux pin");
        nl.connect_named(m, "D1", data[1]).expect("fresh mux pin");
        nl.connect_named(m, "S0", sel[0]).expect("fresh mux pin");
        let y = nl.add_net(format!("{prefix}_y"));
        nl.connect_named(m, "Y", y).expect("fresh mux pin");
        return y;
    }
    if data.len() == 4 {
        let m = nl.add_component(
            format!("{prefix}_m4"),
            ComponentKind::Generic(GenericMacro::Mux { selects: 2 }),
        );
        for (i, d) in data.iter().enumerate() {
            nl.connect_named(m, &format!("D{i}"), *d)
                .expect("fresh mux pin");
        }
        nl.connect_named(m, "S0", sel[0]).expect("fresh mux pin");
        nl.connect_named(m, "S1", sel[1]).expect("fresh mux pin");
        let y = nl.add_net(format!("{prefix}_y"));
        nl.connect_named(m, "Y", y).expect("fresh mux pin");
        return y;
    }
    // > 4 inputs: four groups selected by the low bits, a MUX4TO1 on the
    // two high bits.
    let group = data.len() / 4;
    let low_sel = &sel[..sel.len() - 2];
    let high_sel = &sel[sel.len() - 2..];
    let mut groups = Vec::with_capacity(4);
    for g in 0..4 {
        let slice = &data[g * group..(g + 1) * group];
        groups.push(mux_tree(nl, slice, low_sel, &format!("{prefix}_g{g}")));
    }
    mux_tree(nl, &groups, high_sel, &format!("{prefix}_top"))
}

/// Compiles a word multiplexor: one mux tree per bit, sharing the select
/// lines; optional output enable gates every bit with AND.
pub(crate) fn compile_mux(
    bits: u8,
    inputs: u8,
    enable: bool,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Multiplexor {
        bits,
        inputs,
        enable,
    };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 || inputs < 2 || !inputs.is_power_of_two() {
        return Err(CompileError::InvalidParams(format!(
            "mux needs bits >= 1 and a power-of-two input count >= 2, got {bits}/{inputs}"
        )));
    }
    let mut nl = Netlist::new(name.clone());
    let mut word_nets = Vec::new();
    for i in 0..inputs {
        word_nets.push(net_bus(&mut nl, &format!("D{i}_"), bits));
    }
    let selects = sel_bits(inputs);
    let sels = net_bus(&mut nl, "S", selects);
    let sel_nets: Vec<NetId> = sels.iter().map(|(_, n)| *n).collect();
    let en = enable.then(|| nl.add_net("EN"));
    let mut outs = Vec::new();
    for j in 0..bits as usize {
        let data: Vec<NetId> = word_nets.iter().map(|w| w[j].1).collect();
        let mut y = mux_tree(&mut nl, &data, &sel_nets, &format!("b{j}"));
        if let Some(en_net) = en {
            y = gate(&mut nl, GateFn::And, &[y, en_net], &format!("en{j}"));
        }
        outs.push((format!("Y{j}"), y));
    }
    for w in &word_nets {
        input_ports(&mut nl, w);
    }
    input_ports(&mut nl, &sels);
    if let Some(en_net) = en {
        nl.add_port("EN", PinDir::In, en_net);
    }
    output_ports(&mut nl, &outs);
    db.insert(nl);
    Ok(name)
}

/// Compiles a decoder. 1- and 2-bit decoders map to the generic macros;
/// wider ones are composed from two half decoders and an AND grid.
pub(crate) fn compile_decoder(
    bits: u8,
    enable: bool,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Decoder { bits, enable };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 || bits > 5 {
        return Err(CompileError::InvalidParams(format!(
            "decoder bits must be 1..=5, got {bits}"
        )));
    }
    let mut nl = Netlist::new(name.clone());
    let addr = net_bus(&mut nl, "A", bits);
    let addr_nets: Vec<NetId> = addr.iter().map(|(_, n)| *n).collect();
    let en = enable.then(|| nl.add_net("EN"));
    let raw = decode_nets(&mut nl, &addr_nets, "d");
    let mut outs = Vec::new();
    for (i, y) in raw.into_iter().enumerate() {
        let out = match en {
            Some(en_net) => gate(&mut nl, GateFn::And, &[y, en_net], &format!("en{i}")),
            None => y,
        };
        outs.push((format!("Y{i}"), out));
    }
    input_ports(&mut nl, &addr);
    if let Some(en_net) = en {
        nl.add_port("EN", PinDir::In, en_net);
    }
    output_ports(&mut nl, &outs);
    db.insert(nl);
    Ok(name)
}

/// Produces the `2^k` one-hot nets for an address bus.
fn decode_nets(nl: &mut Netlist, addr: &[NetId], prefix: &str) -> Vec<NetId> {
    match addr.len() {
        1 => {
            let d = nl.add_component(
                format!("{prefix}_d1"),
                ComponentKind::Generic(GenericMacro::Decoder { inputs: 1 }),
            );
            nl.connect_named(d, "A0", addr[0])
                .expect("fresh decoder pin");
            let y0 = nl.add_net(format!("{prefix}_y0"));
            let y1 = nl.add_net(format!("{prefix}_y1"));
            nl.connect_named(d, "Y0", y0).expect("fresh decoder pin");
            nl.connect_named(d, "Y1", y1).expect("fresh decoder pin");
            vec![y0, y1]
        }
        2 => {
            let d = nl.add_component(
                format!("{prefix}_d2"),
                ComponentKind::Generic(GenericMacro::Decoder { inputs: 2 }),
            );
            nl.connect_named(d, "A0", addr[0])
                .expect("fresh decoder pin");
            nl.connect_named(d, "A1", addr[1])
                .expect("fresh decoder pin");
            let mut ys = Vec::new();
            for i in 0..4 {
                let y = nl.add_net(format!("{prefix}_y{i}"));
                nl.connect_named(d, &format!("Y{i}"), y)
                    .expect("fresh decoder pin");
                ys.push(y);
            }
            ys
        }
        k => {
            // Split into low 2 bits and the rest; AND grid combines them.
            let low = decode_nets(nl, &addr[..2], &format!("{prefix}_lo"));
            let high = decode_nets(nl, &addr[2..], &format!("{prefix}_hi"));
            let mut ys = Vec::with_capacity(1 << k);
            for (hi, h) in high.iter().enumerate() {
                for (lo, l) in low.iter().enumerate() {
                    let idx = (hi << 2) | lo;
                    ys.push(gate(
                        nl,
                        GateFn::And,
                        &[*h, *l],
                        &format!("{prefix}_y{idx}"),
                    ));
                }
            }
            ys
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::verify::{check_comb_equivalence, micro_wrapper};

    #[test]
    fn mux_2_and_4_way() {
        let mut db = DesignDb::new();
        for inputs in [2u8, 4] {
            let micro = MicroComponent::Multiplexor {
                bits: 2,
                inputs,
                enable: false,
            };
            let name = compile(&micro, &mut db).unwrap();
            let flat = db.flatten(&name).unwrap();
            check_comb_equivalence(&micro_wrapper(micro), &flat, 0).unwrap();
        }
    }

    #[test]
    fn mux_8_way_two_levels() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Multiplexor {
            bits: 1,
            inputs: 8,
            enable: false,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_comb_equivalence(&micro_wrapper(micro), &flat, 0).unwrap();
    }

    #[test]
    fn mux_with_enable() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Multiplexor {
            bits: 2,
            inputs: 2,
            enable: true,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_comb_equivalence(&micro_wrapper(micro), &flat, 0).unwrap();
    }

    #[test]
    fn decoders_equivalent() {
        let mut db = DesignDb::new();
        for bits in [1u8, 2, 3, 4] {
            let micro = MicroComponent::Decoder {
                bits,
                enable: false,
            };
            let name = compile(&micro, &mut db).unwrap();
            let flat = db.flatten(&name).unwrap();
            check_comb_equivalence(&micro_wrapper(micro), &flat, 0)
                .unwrap_or_else(|e| panic!("bits={bits}: {e}"));
        }
    }

    #[test]
    fn decoder_with_enable() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Decoder {
            bits: 3,
            enable: true,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_comb_equivalence(&micro_wrapper(micro), &flat, 0).unwrap();
    }

    #[test]
    fn mux_rejects_non_power_of_two() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Multiplexor {
            bits: 1,
            inputs: 3,
            enable: false,
        };
        assert!(matches!(
            compile(&micro, &mut db),
            Err(CompileError::InvalidParams(_))
        ));
    }
}
