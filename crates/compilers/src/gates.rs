//! Compilers for wide gates and logic units (Fig. 12 `GATES` and
//! `LOGIC UNIT`).
//!
//! The gate compiler is a direct implementation of the paper's level-based
//! OR-compiler algorithm (§6.1): pack each level's leftover outputs into
//! the widest gates available in the generic library.

use crate::helpers::{gate_tree, input_ports, inverting_gate_tree, net_bus, output_ports};
use crate::{design_name, CompileError};
use milo_netlist::{DesignDb, GateFn, MicroComponent, NetId, Netlist, PinDir};

/// Widest gate in the generic library (Fig. 13 lists 2-, 3- and 4-input
/// gates).
pub const MAX_GENERIC_FANIN: usize = 4;

/// Compiles a wide gate into a tree of 2–4-input generic gates.
pub(crate) fn compile_gate(
    function: GateFn,
    inputs: u8,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Gate { function, inputs };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if inputs == 0 || (matches!(function, GateFn::Inv | GateFn::Buf) && inputs != 1) {
        return Err(CompileError::InvalidParams(format!(
            "{function} gate cannot take {inputs} inputs"
        )));
    }
    let mut nl = Netlist::new(name.clone());
    let ins = net_bus(&mut nl, "A", inputs);
    let nets: Vec<NetId> = ins.iter().map(|(_, n)| *n).collect();
    let y = if function.is_associative() {
        if function.deinverted().is_some() {
            inverting_gate_tree(&mut nl, function, &nets, MAX_GENERIC_FANIN, "t")
        } else {
            gate_tree(&mut nl, function, &nets, MAX_GENERIC_FANIN, "t")
        }
    } else {
        crate::helpers::gate(&mut nl, function, &nets, "t")
    };
    input_ports(&mut nl, &ins);
    nl.add_port("Y", PinDir::Out, y);
    db.insert(nl);
    Ok(name)
}

/// Compiles a logic unit: `bits` parallel copies of the gate function over
/// `inputs` words. Wide slices (> 4 inputs) are built by a hierarchical
/// call to the gate compiler.
pub(crate) fn compile_logic_unit(
    function: GateFn,
    inputs: u8,
    bits: u8,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::LogicUnit {
        function,
        inputs,
        bits,
    };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 || inputs == 0 {
        return Err(CompileError::InvalidParams(
            "logic unit needs bits >= 1, inputs >= 1".into(),
        ));
    }
    let mut nl = Netlist::new(name.clone());
    // Input buses A{i}_{j}: word i, bit j.
    let mut word_nets: Vec<Vec<(String, NetId)>> = Vec::new();
    for i in 0..inputs {
        word_nets.push(net_bus(&mut nl, &format!("A{i}_"), bits));
    }
    let mut outs = Vec::new();
    // Wide slices instantiate the compiled wide-gate design.
    let wide = inputs as usize > MAX_GENERIC_FANIN && function.is_associative();
    let slice_design = if wide {
        Some(compile_gate(function, inputs, db)?)
    } else {
        None
    };
    for j in 0..bits as usize {
        let slice_inputs: Vec<NetId> = word_nets.iter().map(|w| w[j].1).collect();
        let y = match &slice_design {
            Some(design) => {
                let kind = db.instance_kind(design).expect("just compiled");
                let inst = nl.add_component(format!("slice{j}"), kind);
                for (i, net) in slice_inputs.iter().enumerate() {
                    nl.connect_named(inst, &format!("A{i}"), *net)
                        .expect("fresh instance pin");
                }
                let y = nl.add_net(format!("y{j}"));
                nl.connect_named(inst, "Y", y).expect("fresh instance pin");
                y
            }
            None => crate::helpers::gate(&mut nl, function, &slice_inputs, &format!("y{j}")),
        };
        outs.push((format!("Y{j}"), y));
    }
    for w in &word_nets {
        input_ports(&mut nl, w);
    }
    output_ports(&mut nl, &outs);
    db.insert(nl);
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::verify::{check_comb_equivalence, micro_wrapper};

    #[test]
    fn wide_or_gate_equivalent() {
        let mut db = DesignDb::new();
        for n in [2u8, 4, 5, 9] {
            let micro = MicroComponent::Gate {
                function: GateFn::Or,
                inputs: n,
            };
            let name = compile(&micro, &mut db).unwrap();
            let flat = db.flatten(&name).unwrap();
            let golden = micro_wrapper(micro);
            check_comb_equivalence(&golden, &flat, 64).unwrap();
        }
    }

    #[test]
    fn wide_nand_and_xnor_equivalent() {
        let mut db = DesignDb::new();
        for f in [
            GateFn::Nand,
            GateFn::Nor,
            GateFn::Xnor,
            GateFn::Xor,
            GateFn::And,
        ] {
            let micro = MicroComponent::Gate {
                function: f,
                inputs: 7,
            };
            let name = compile(&micro, &mut db).unwrap();
            let flat = db.flatten(&name).unwrap();
            let golden = micro_wrapper(micro);
            check_comb_equivalence(&golden, &flat, 200).unwrap_or_else(|e| panic!("{f}: {e}"));
        }
    }

    #[test]
    fn cache_hit_returns_same_design() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Gate {
            function: GateFn::Or,
            inputs: 9,
        };
        let n1 = compile(&micro, &mut db).unwrap();
        let count = db.len();
        let n2 = compile(&micro, &mut db).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(db.len(), count, "second compile must hit the cache");
    }

    #[test]
    fn logic_unit_bitwise_equivalent() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::LogicUnit {
            function: GateFn::Xor,
            inputs: 2,
            bits: 4,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        let golden = micro_wrapper(micro);
        check_comb_equivalence(&golden, &flat, 64).unwrap();
    }

    #[test]
    fn wide_logic_unit_uses_hierarchy() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::LogicUnit {
            function: GateFn::And,
            inputs: 6,
            bits: 2,
        };
        let name = compile(&micro, &mut db).unwrap();
        // The wide-gate sub-design must be in the database too.
        assert!(db.contains("AND6"));
        let flat = db.flatten(&name).unwrap();
        let golden = micro_wrapper(micro);
        check_comb_equivalence(&golden, &flat, 4096).unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Gate {
            function: GateFn::Inv,
            inputs: 3,
        };
        assert!(matches!(
            compile(&micro, &mut db),
            Err(CompileError::InvalidParams(_))
        ));
    }
}
