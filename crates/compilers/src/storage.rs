//! Compilers for registers and counters (Fig. 12 `REGISTER` and
//! `COUNTER`).
//!
//! Following §6.1, "the design compiler places a multiplexor in front of
//! each flip-flop. In the course of creating the register, the register
//! compiler will call the multiplexor compiler" — the register compiler
//! here makes exactly that hierarchical call and instantiates the compiled
//! `MUXn:1:1` design per bit (visible in Fig. 16's REG4 → MUX2:1:1).

use crate::datapath::compile_mux;
use crate::helpers::{gate, gate_tree, input_ports, inv, inverting_gate_tree, net_bus, vdd, vss};
use crate::{design_name, CompileError};
use milo_netlist::{
    ComponentKind, ControlSet, CounterFunctions, DesignDb, GateFn, GenericMacro, MicroComponent,
    NetId, Netlist, PinDir, RegFunctions, Trigger,
};

/// Compiles a register.
pub(crate) fn compile_register(
    bits: u8,
    trigger: Trigger,
    funcs: RegFunctions,
    ctrl: ControlSet,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Register {
        bits,
        trigger,
        funcs,
        ctrl,
    };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 {
        return Err(CompileError::InvalidParams(
            "register needs bits >= 1".into(),
        ));
    }
    let mut nl = Netlist::new(name.clone());

    // Ports, in the micro component's pin order.
    let d = if funcs.load {
        net_bus(&mut nl, "D", bits)
    } else {
        Vec::new()
    };
    let sil = funcs.shift_left.then(|| nl.add_net("SIL"));
    let sir = funcs.shift_right.then(|| nl.add_net("SIR"));
    let sel_count = if funcs.source_count() > 1 {
        funcs.select_pins()
    } else {
        0
    };
    let f_pins = net_bus(&mut nl, "F", sel_count);
    let set = ctrl.set.then(|| nl.add_net("SET"));
    let rst = ctrl.reset.then(|| nl.add_net("RST"));
    let en = ctrl.enable.then(|| nl.add_net("EN"));
    let clk = nl.add_net("CLK");

    // Next-state nets and storage bits.
    let next: Vec<NetId> = (0..bits).map(|i| nl.add_net(format!("next{i}"))).collect();
    let mut q = Vec::with_capacity(bits as usize);
    for (i, &next_i) in next.iter().enumerate() {
        let q_net = match trigger {
            Trigger::EdgeTriggered => {
                let (_, qn) =
                    crate::helpers::dff(&mut nl, next_i, clk, set, rst, en, &format!("ff{i}"));
                qn
            }
            Trigger::Latch => {
                // Latch gate = CLK (AND-ed with EN when present).
                let g = match en {
                    Some(e) => gate(&mut nl, GateFn::And, &[clk, e], &format!("g{i}")),
                    None => clk,
                };
                let lat = nl.add_component(
                    format!("lat{i}"),
                    ComponentKind::Generic(GenericMacro::Latch {
                        set: set.is_some(),
                        reset: rst.is_some(),
                    }),
                );
                nl.connect_named(lat, "D", next_i).expect("fresh latch pin");
                nl.connect_named(lat, "G", g).expect("fresh latch pin");
                if let Some(s) = set {
                    nl.connect_named(lat, "SET", s).expect("fresh latch pin");
                }
                if let Some(r) = rst {
                    nl.connect_named(lat, "RST", r).expect("fresh latch pin");
                }
                let qn = nl.add_net(format!("lat{i}_q"));
                nl.connect_named(lat, "Q", qn).expect("fresh latch pin");
                qn
            }
        };
        q.push(q_net);
    }

    // Input multiplexors — hierarchical call to the multiplexor compiler.
    if sel_count == 0 {
        // Single source: hold (or plain load if that is the only function).
        for i in 0..bits as usize {
            let src = if funcs.load { d[i].1 } else { q[i] };
            // next_i is just the source: splice with a buffer to keep the
            // net distinct and the DFF input driven.
            let g = nl.add_component(
                format!("buf{i}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
            );
            nl.connect_named(g, "A0", src).expect("fresh buf pin");
            nl.connect_named(g, "Y", next[i]).expect("fresh buf pin");
        }
    } else {
        let ways = 1u8 << sel_count;
        let mux_design = compile_mux(1, ways, false, db)?;
        for i in 0..bits as usize {
            // Source order: hold, load, shift-left, shift-right; pad with
            // hold (matches the simulator's out-of-range rule).
            let mut sources: Vec<NetId> = vec![q[i]];
            if funcs.load {
                sources.push(d[i].1);
            }
            if funcs.shift_left {
                sources.push(if i == 0 {
                    sil.expect("SIL present")
                } else {
                    q[i - 1]
                });
            }
            if funcs.shift_right {
                sources.push(if i == bits as usize - 1 {
                    sir.expect("SIR present")
                } else {
                    q[i + 1]
                });
            }
            while sources.len() < ways as usize {
                sources.push(q[i]);
            }
            let kind = db.instance_kind(&mux_design).expect("just compiled");
            let m = nl.add_component(format!("mux{i}"), kind);
            for (k, src) in sources.iter().enumerate() {
                nl.connect_named(m, &format!("D{k}_0"), *src)
                    .expect("fresh mux pin");
            }
            for (k, (_, s)) in f_pins.iter().enumerate() {
                nl.connect_named(m, &format!("S{k}"), *s)
                    .expect("fresh mux pin");
            }
            nl.connect_named(m, "Y0", next[i]).expect("fresh mux pin");
        }
    }

    input_ports(&mut nl, &d);
    if let Some(n) = sil {
        nl.add_port("SIL", PinDir::In, n);
    }
    if let Some(n) = sir {
        nl.add_port("SIR", PinDir::In, n);
    }
    input_ports(&mut nl, &f_pins);
    if let Some(n) = set {
        nl.add_port("SET", PinDir::In, n);
    }
    if let Some(n) = rst {
        nl.add_port("RST", PinDir::In, n);
    }
    if let Some(n) = en {
        nl.add_port("EN", PinDir::In, n);
    }
    nl.add_port("CLK", PinDir::In, clk);
    for (i, qn) in q.iter().enumerate() {
        nl.add_port(format!("Q{i}"), PinDir::Out, *qn);
    }
    db.insert(nl);
    Ok(name)
}

/// Compiles a counter: flip-flops, an ADD1-chain increment/decrement
/// network on Q, per-bit next-state multiplexors and terminal-count logic.
pub(crate) fn compile_counter(
    bits: u8,
    funcs: CounterFunctions,
    ctrl: ControlSet,
    db: &mut DesignDb,
) -> Result<String, CompileError> {
    let micro = MicroComponent::Counter { bits, funcs, ctrl };
    let name = design_name(&micro);
    if db.contains(&name) {
        return Ok(name);
    }
    if bits == 0 {
        return Err(CompileError::InvalidParams(
            "counter needs bits >= 1".into(),
        ));
    }
    let mut nl = Netlist::new(name.clone());

    let d = if funcs.load {
        net_bus(&mut nl, "D", bits)
    } else {
        Vec::new()
    };
    let load = funcs.load.then(|| nl.add_net("LOAD"));
    let up = (funcs.up && funcs.down).then(|| nl.add_net("UP"));
    let set = ctrl.set.then(|| nl.add_net("SET"));
    let rst = ctrl.reset.then(|| nl.add_net("RST"));
    let en = ctrl.enable.then(|| nl.add_net("EN"));
    let clk = nl.add_net("CLK");

    let next: Vec<NetId> = (0..bits).map(|i| nl.add_net(format!("next{i}"))).collect();
    let mut q = Vec::with_capacity(bits as usize);
    for (i, &next_i) in next.iter().enumerate() {
        let (_, qn) = crate::helpers::dff(&mut nl, next_i, clk, set, rst, None, &format!("ff{i}"));
        q.push(qn);
    }

    let counts = if funcs.up || funcs.down {
        // B operand and carry-in of the ±1 adder chain.
        let (b_net, cin) = match (funcs.up, funcs.down) {
            (true, true) => {
                let u = up.expect("UP port present");
                (inv(&mut nl, u, "nup"), u)
            }
            (true, false) => (vss(&mut nl), vdd(&mut nl)),
            (false, true) => (vdd(&mut nl), vss(&mut nl)),
            (false, false) => unreachable!(),
        };
        let b: Vec<NetId> = vec![b_net; bits as usize];
        let (sums, _co) =
            crate::arith::adder_chain(&mut nl, &q, &b, cin, milo_netlist::CarryMode::Ripple);
        Some(sums)
    } else {
        None
    };

    // Per-bit next-state selection, specialized on the available
    // controls so that e.g. a free-running up counter needs no muxes.
    let mux2 = |nl: &mut Netlist, i: usize, d0: NetId, d1: NetId, s0: NetId, y: NetId| {
        let m = nl.add_component(
            format!("nm{i}"),
            ComponentKind::Generic(GenericMacro::Mux { selects: 1 }),
        );
        nl.connect_named(m, "D0", d0).expect("fresh mux pin");
        nl.connect_named(m, "D1", d1).expect("fresh mux pin");
        nl.connect_named(m, "S0", s0).expect("fresh mux pin");
        nl.connect_named(m, "Y", y).expect("fresh mux pin");
    };
    let buf_to = |nl: &mut Netlist, i: usize, src: NetId, y: NetId| {
        let g = nl.add_component(
            format!("buf{i}"),
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        nl.connect_named(g, "A0", src).expect("fresh buf pin");
        nl.connect_named(g, "Y", y).expect("fresh buf pin");
    };
    for i in 0..bits as usize {
        match (&counts, load, en) {
            (Some(c), Some(l), Some(e)) => {
                // 4:1 mux: S0 = EN, S1 = LOAD & EN.
                let s1 = gate(&mut nl, GateFn::And, &[l, e], &format!("ld_en{i}"));
                let m = nl.add_component(
                    format!("nm{i}"),
                    ComponentKind::Generic(GenericMacro::Mux { selects: 2 }),
                );
                nl.connect_named(m, "D0", q[i]).expect("fresh mux pin"); // hold
                nl.connect_named(m, "D1", c[i]).expect("fresh mux pin"); // count
                nl.connect_named(m, "D2", d[i].1).expect("fresh mux pin"); // (unreachable)
                nl.connect_named(m, "D3", d[i].1).expect("fresh mux pin"); // load
                nl.connect_named(m, "S0", e).expect("fresh mux pin");
                nl.connect_named(m, "S1", s1).expect("fresh mux pin");
                nl.connect_named(m, "Y", next[i]).expect("fresh mux pin");
            }
            (Some(c), Some(l), None) => mux2(&mut nl, i, c[i], d[i].1, l, next[i]),
            (Some(c), None, Some(e)) => mux2(&mut nl, i, q[i], c[i], e, next[i]),
            (Some(c), None, None) => buf_to(&mut nl, i, c[i], next[i]),
            (None, Some(l), Some(e)) => {
                let s0 = gate(&mut nl, GateFn::And, &[l, e], &format!("ld_en{i}"));
                mux2(&mut nl, i, q[i], d[i].1, s0, next[i]);
            }
            (None, Some(l), None) => mux2(&mut nl, i, q[i], d[i].1, l, next[i]),
            (None, None, _) => buf_to(&mut nl, i, q[i], next[i]),
        }
    }

    // Terminal-count / carry-out.
    let co = {
        let tc = match (funcs.up, funcs.down) {
            (false, false) => vss(&mut nl),
            (true, false) => all_ones(&mut nl, &q),
            (false, true) => all_zeros(&mut nl, &q),
            (true, true) => {
                let tc_up = all_ones(&mut nl, &q);
                let tc_dn = all_zeros(&mut nl, &q);
                let m = nl.add_component(
                    "tcm",
                    ComponentKind::Generic(GenericMacro::Mux { selects: 1 }),
                );
                nl.connect_named(m, "D0", tc_dn).expect("fresh mux pin");
                nl.connect_named(m, "D1", tc_up).expect("fresh mux pin");
                nl.connect_named(m, "S0", up.expect("UP present"))
                    .expect("fresh mux pin");
                let y = nl.add_net("tc");
                nl.connect_named(m, "Y", y).expect("fresh mux pin");
                y
            }
        };
        let mut co = tc;
        if let Some(e) = en {
            co = gate(&mut nl, GateFn::And, &[co, e], "co_en");
        }
        if let Some(l) = load {
            let nl_load = inv(&mut nl, l, "nload");
            co = gate(&mut nl, GateFn::And, &[co, nl_load], "co_ld");
        }
        co
    };

    input_ports(&mut nl, &d);
    if let Some(n) = load {
        nl.add_port("LOAD", PinDir::In, n);
    }
    if let Some(n) = up {
        nl.add_port("UP", PinDir::In, n);
    }
    if let Some(n) = set {
        nl.add_port("SET", PinDir::In, n);
    }
    if let Some(n) = rst {
        nl.add_port("RST", PinDir::In, n);
    }
    if let Some(n) = en {
        nl.add_port("EN", PinDir::In, n);
    }
    nl.add_port("CLK", PinDir::In, clk);
    for (i, qn) in q.iter().enumerate() {
        nl.add_port(format!("Q{i}"), PinDir::Out, *qn);
    }
    nl.add_port("CO", PinDir::Out, co);
    db.insert(nl);
    Ok(name)
}

fn all_ones(nl: &mut Netlist, q: &[NetId]) -> NetId {
    if q.len() == 1 {
        let g = nl.add_component(
            "tc1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        nl.connect_named(g, "A0", q[0]).expect("fresh buf pin");
        let y = nl.add_net("tc1_y");
        nl.connect_named(g, "Y", y).expect("fresh buf pin");
        return y;
    }
    gate_tree(nl, GateFn::And, q, 4, "tcu")
}

fn all_zeros(nl: &mut Netlist, q: &[NetId]) -> NetId {
    if q.len() == 1 {
        return inv(nl, q[0], "tcd");
    }
    inverting_gate_tree(nl, GateFn::Nor, q, 4, "tcd")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::verify::{check_seq_equivalence, micro_wrapper};

    fn check_reg(bits: u8, funcs: RegFunctions, ctrl: ControlSet) {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Register {
            bits,
            trigger: Trigger::EdgeTriggered,
            funcs,
            ctrl,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_seq_equivalence(&micro_wrapper(micro), &flat, 200, 7)
            .unwrap_or_else(|e| panic!("{}: {e}", micro.describe()));
    }

    #[test]
    fn plain_load_register() {
        check_reg(4, RegFunctions::LOAD, ControlSet::NONE);
    }

    #[test]
    fn register_with_reset_enable() {
        check_reg(
            4,
            RegFunctions::LOAD,
            ControlSet {
                set: false,
                reset: true,
                enable: true,
            },
        );
    }

    #[test]
    fn register_with_set() {
        check_reg(
            2,
            RegFunctions::LOAD,
            ControlSet {
                set: true,
                reset: true,
                enable: false,
            },
        );
    }

    #[test]
    fn shift_right_register() {
        check_reg(
            4,
            RegFunctions {
                load: true,
                shift_left: false,
                shift_right: true,
            },
            ControlSet::RESET,
        );
    }

    #[test]
    fn full_shift_register() {
        check_reg(
            3,
            RegFunctions {
                load: true,
                shift_left: true,
                shift_right: true,
            },
            ControlSet::NONE,
        );
    }

    #[test]
    fn shift_only_register() {
        check_reg(
            4,
            RegFunctions {
                load: false,
                shift_left: false,
                shift_right: true,
            },
            ControlSet::NONE,
        );
    }

    #[test]
    fn register_hierarchy_calls_mux_compiler() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Register {
            bits: 4,
            trigger: Trigger::EdgeTriggered,
            funcs: RegFunctions {
                load: true,
                shift_left: false,
                shift_right: true,
            },
            ctrl: ControlSet::NONE,
        };
        compile(&micro, &mut db).unwrap();
        // Fig. 16: REG4 requires MUX4:1:1 (3 sources round up to 4 ways).
        assert!(
            db.contains("MUX4:1:1"),
            "designs: {:?}",
            db.names().collect::<Vec<_>>()
        );
    }

    #[test]
    fn latch_register_is_structural() {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Register {
            bits: 2,
            trigger: Trigger::Latch,
            funcs: RegFunctions::LOAD,
            ctrl: ControlSet::NONE,
        };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        let latches = flat
            .component_ids()
            .filter(|&id| {
                matches!(
                    flat.component(id).map(|c| &c.kind),
                    Ok(ComponentKind::Generic(GenericMacro::Latch { .. }))
                )
            })
            .count();
        assert_eq!(latches, 2);
    }

    fn check_ctr(bits: u8, funcs: CounterFunctions, ctrl: ControlSet) {
        let mut db = DesignDb::new();
        let micro = MicroComponent::Counter { bits, funcs, ctrl };
        let name = compile(&micro, &mut db).unwrap();
        let flat = db.flatten(&name).unwrap();
        check_seq_equivalence(&micro_wrapper(micro), &flat, 300, 11)
            .unwrap_or_else(|e| panic!("{}: {e}", micro.describe()));
    }

    #[test]
    fn up_counter() {
        check_ctr(4, CounterFunctions::UP, ControlSet::NONE);
    }

    #[test]
    fn up_counter_with_reset() {
        check_ctr(4, CounterFunctions::UP, ControlSet::RESET);
    }

    #[test]
    fn loadable_up_down_counter() {
        check_ctr(
            4,
            CounterFunctions {
                load: true,
                up: true,
                down: true,
            },
            ControlSet {
                set: false,
                reset: true,
                enable: true,
            },
        );
    }

    #[test]
    fn down_counter() {
        check_ctr(
            3,
            CounterFunctions {
                load: false,
                up: false,
                down: true,
            },
            ControlSet::NONE,
        );
    }

    #[test]
    fn load_only_counter_acts_as_register() {
        check_ctr(
            2,
            CounterFunctions {
                load: true,
                up: false,
                down: false,
            },
            ControlSet {
                set: false,
                reset: false,
                enable: true,
            },
        );
    }

    #[test]
    fn counter_with_set() {
        check_ctr(
            2,
            CounterFunctions::UP,
            ControlSet {
                set: true,
                reset: true,
                enable: false,
            },
        );
    }
}
