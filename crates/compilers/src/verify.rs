//! Equivalence-checking utilities used to validate compiler output (and
//! reused across the workspace to validate the mapper and optimizers).

use milo_netlist::{ComponentKind, MicroComponent, Netlist, PinDir, Simulator};
use std::collections::HashMap;

/// Wraps a single microarchitecture component in a netlist whose ports
/// mirror the component's pins one-to-one.
pub fn micro_wrapper(micro: MicroComponent) -> Netlist {
    let mut nl = Netlist::new(format!("wrap_{}", micro.describe()));
    let comp = nl.add_component("u0", ComponentKind::Micro(micro));
    let pins: Vec<(String, PinDir)> = nl
        .component(comp)
        .expect("just added")
        .pins
        .iter()
        .map(|p| (p.name.clone(), p.dir))
        .collect();
    for (name, dir) in pins {
        let net = nl.add_net(name.clone());
        nl.connect_named(comp, &name, net).expect("fresh pin");
        nl.add_port(name, dir, net);
    }
    nl
}

fn input_names(nl: &Netlist) -> Vec<String> {
    nl.ports()
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .map(|p| p.name.clone())
        .collect()
}

fn output_names(nl: &Netlist) -> Vec<String> {
    nl.ports()
        .iter()
        .filter(|p| p.dir == PinDir::Out)
        .map(|p| p.name.clone())
        .collect()
}

/// A simple deterministic xorshift generator so the crate needs no RNG
/// dependency for its own tests.
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Checks combinational equivalence of two netlists with identical port
/// lists. Exhaustive when the input count is at most `exhaustive_limit`
/// (default 12), otherwise `trials` random patterns.
///
/// Returns `Err` with a human-readable description of the first mismatch.
///
/// # Panics
///
/// Panics if the port lists disagree or either netlist fails to elaborate.
pub fn check_comb_equivalence(
    golden: &Netlist,
    candidate: &Netlist,
    trials: u32,
) -> Result<(), String> {
    let ins = input_names(golden);
    let outs = output_names(golden);
    assert_eq!(ins, input_names(candidate), "input ports differ");
    assert_eq!(
        {
            let mut a = outs.clone();
            a.sort();
            a
        },
        {
            let mut b = output_names(candidate);
            b.sort();
            b
        },
        "output ports differ"
    );
    let mut sim_g = Simulator::new(golden).expect("golden elaborates");
    let mut sim_c = Simulator::new(candidate).expect("candidate elaborates");

    let n = ins.len();
    let patterns: Vec<u64> = if n <= 12 {
        (0..(1u64 << n)).collect()
    } else {
        let mut rng = XorShift::new(0x5eed + n as u64);
        (0..trials as u64).map(|_| rng.next_u64()).collect()
    };
    for pat in patterns {
        for (i, name) in ins.iter().enumerate() {
            let v = pat >> (i % 64) & 1 == 1;
            sim_g.set_input(name, v).expect("input exists");
            sim_c.set_input(name, v).expect("input exists");
        }
        sim_g.settle();
        sim_c.settle();
        for o in &outs {
            let g = sim_g.output(o).expect("output exists");
            let c = sim_c.output(o).expect("output exists");
            if g != c {
                return Err(format!(
                    "output {o} differs under pattern {pat:#b}: golden={g} candidate={c}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks sequential equivalence: applies `steps` random input vectors,
/// clocking both netlists and comparing every output after each step and
/// after each intermediate settle.
///
/// # Panics
///
/// Panics if the port lists disagree or either netlist fails to elaborate.
pub fn check_seq_equivalence(
    golden: &Netlist,
    candidate: &Netlist,
    steps: u32,
    seed: u64,
) -> Result<(), String> {
    let ins = input_names(golden);
    let outs = output_names(golden);
    assert_eq!(ins, input_names(candidate), "input ports differ");
    let mut sim_g = Simulator::new(golden).expect("golden elaborates");
    let mut sim_c = Simulator::new(candidate).expect("candidate elaborates");
    let mut rng = XorShift::new(seed);
    let mut values: HashMap<String, bool> = HashMap::new();
    for step in 0..steps {
        let pat = rng.next_u64();
        for (i, name) in ins.iter().enumerate() {
            let v = pat >> (i % 64) & 1 == 1;
            values.insert(name.clone(), v);
            sim_g.set_input(name, v).expect("input exists");
            sim_c.set_input(name, v).expect("input exists");
        }
        sim_g.settle();
        sim_c.settle();
        for o in &outs {
            let g = sim_g.output(o).expect("output exists");
            let c = sim_c.output(o).expect("output exists");
            if g != c {
                return Err(format!(
                    "pre-clock output {o} differs at step {step} (inputs {values:?}): golden={g} candidate={c}"
                ));
            }
        }
        sim_g.step();
        sim_c.step();
        for o in &outs {
            let g = sim_g.output(o).expect("output exists");
            let c = sim_c.output(o).expect("output exists");
            if g != c {
                return Err(format!(
                    "post-clock output {o} differs at step {step} (inputs {values:?}): golden={g} candidate={c}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::{GateFn, GenericMacro};

    fn inv_netlist(name: &str) -> Netlist {
        let mut nl = Netlist::new(name);
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn identical_netlists_are_equivalent() {
        let a = inv_netlist("a");
        let b = inv_netlist("b");
        assert!(check_comb_equivalence(&a, &b, 16).is_ok());
    }

    #[test]
    fn different_netlists_are_caught() {
        let a = inv_netlist("a");
        let mut b = Netlist::new("b");
        let x = b.add_net("a");
        let y = b.add_net("y");
        let g = b.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        b.connect_named(g, "A0", x).unwrap();
        b.connect_named(g, "Y", y).unwrap();
        b.add_port("a", PinDir::In, x);
        b.add_port("y", PinDir::Out, y);
        assert!(check_comb_equivalence(&a, &b, 16).is_err());
    }

    #[test]
    fn micro_wrapper_has_matching_ports() {
        let wrap = micro_wrapper(MicroComponent::Gate {
            function: GateFn::Or,
            inputs: 6,
        });
        assert_eq!(wrap.ports().len(), 7);
        assert_eq!(
            wrap.ports().iter().filter(|p| p.dir == PinDir::In).count(),
            6
        );
    }
}
