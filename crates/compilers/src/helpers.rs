//! Small netlist-construction helpers shared by all logic compilers.

use milo_netlist::{ComponentId, ComponentKind, GateFn, GenericMacro, NetId, Netlist, PinDir};

/// Adds an `n`-input generic gate fed by `inputs`, returning its output net.
///
/// # Panics
///
/// Panics if `inputs.len()` does not match `n`, or `n` is outside the
/// generic library's 1–4 range.
pub fn gate(nl: &mut Netlist, f: GateFn, inputs: &[NetId], out_name: &str) -> NetId {
    let n = inputs.len() as u8;
    match f {
        GateFn::Inv | GateFn::Buf => assert_eq!(n, 1, "{f} takes one input"),
        _ => assert!(
            (2..=4).contains(&n),
            "generic {f} gates take 2-4 inputs, got {n}"
        ),
    }
    let g = nl.add_component(
        format!("{}_{}", f.mnemonic(), out_name),
        ComponentKind::Generic(GenericMacro::Gate(f, n)),
    );
    for (i, net) in inputs.iter().enumerate() {
        nl.connect_named(g, &format!("A{i}"), *net)
            .expect("fresh gate pin");
    }
    let y = nl.add_net(out_name);
    nl.connect_named(g, "Y", y).expect("fresh gate pin");
    y
}

/// Adds an inverter on `input`.
pub fn inv(nl: &mut Netlist, input: NetId, out_name: &str) -> NetId {
    gate(nl, GateFn::Inv, &[input], out_name)
}

/// Adds (or reuses) a constant-high net.
pub fn vdd(nl: &mut Netlist) -> NetId {
    constant(nl, true)
}

/// Adds (or reuses) a constant-low net.
pub fn vss(nl: &mut Netlist) -> NetId {
    constant(nl, false)
}

fn constant(nl: &mut Netlist, high: bool) -> NetId {
    let (macro_, name) = if high {
        (GenericMacro::Vdd, "vdd")
    } else {
        (GenericMacro::Vss, "vss")
    };
    // Reuse an existing constant driver if present.
    for id in nl.component_ids() {
        if let Ok(c) = nl.component(id) {
            if c.kind == ComponentKind::Generic(macro_) {
                if let Some(net) = c.pins[0].net {
                    return net;
                }
            }
        }
    }
    let c = nl.add_component(name, ComponentKind::Generic(macro_));
    let net = nl.add_net(name);
    nl.connect_named(c, "Y", net).expect("fresh constant pin");
    net
}

/// Builds a balanced tree of `f` gates (max fanin `max_fanin`) over
/// `inputs`, returning the root output net. This is the paper's level-based
/// OR-compiler algorithm (§6.1): each level packs the leftover outputs of
/// the previous level into the widest available gates.
///
/// # Panics
///
/// Panics if `inputs` is empty or `f` is not associative.
pub fn gate_tree(
    nl: &mut Netlist,
    f: GateFn,
    inputs: &[NetId],
    max_fanin: usize,
    prefix: &str,
) -> NetId {
    assert!(f.is_associative(), "{f} cannot form a tree");
    assert!(!inputs.is_empty(), "need at least one input");
    let mut level: Vec<NetId> = inputs.to_vec();
    let mut level_count = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        let mut i = 0;
        let mut g = 0usize;
        while i < level.len() {
            let remaining = level.len() - i;
            if remaining == 1 {
                // Carry the odd signal up unchanged.
                next.push(level[i]);
                break;
            }
            let take = remaining.min(max_fanin);
            let out = gate(
                nl,
                f,
                &level[i..i + take],
                &format!("{prefix}_l{level_count}g{g}"),
            );
            next.push(out);
            i += take;
            g += 1;
        }
        level = next;
        level_count += 1;
    }
    level[0]
}

/// Like [`gate_tree`] but for an inverting function (NAND/NOR/XNOR): builds
/// the de-inverted tree and makes the *root* gate the inverting variant,
/// or adds an inverter for a single input.
pub fn inverting_gate_tree(
    nl: &mut Netlist,
    f: GateFn,
    inputs: &[NetId],
    max_fanin: usize,
    prefix: &str,
) -> NetId {
    let base = f.deinverted().expect("inverting function expected");
    if inputs.len() == 1 {
        return inv(nl, inputs[0], &format!("{prefix}_inv"));
    }
    if inputs.len() <= max_fanin {
        return gate(nl, f, inputs, &format!("{prefix}_root"));
    }
    // Build the bulk with the base function, finishing with an inverting
    // root gate over the last level.
    let mut level: Vec<NetId> = inputs.to_vec();
    let mut level_count = 0usize;
    while level.len() > max_fanin {
        let mut next = Vec::new();
        let mut i = 0;
        let mut g = 0usize;
        while i < level.len() {
            let remaining = level.len() - i;
            if remaining == 1 {
                next.push(level[i]);
                break;
            }
            let take = remaining.min(max_fanin);
            let out = gate(
                nl,
                base,
                &level[i..i + take],
                &format!("{prefix}_l{level_count}g{g}"),
            );
            next.push(out);
            i += take;
            g += 1;
        }
        level = next;
        level_count += 1;
    }
    gate(nl, f, &level, &format!("{prefix}_root"))
}

/// Adds a D flip-flop with optional controls; returns `(component, q_net)`.
pub fn dff(
    nl: &mut Netlist,
    d: NetId,
    clk: NetId,
    set: Option<NetId>,
    reset: Option<NetId>,
    enable: Option<NetId>,
    name: &str,
) -> (ComponentId, NetId) {
    let ff = nl.add_component(
        name,
        ComponentKind::Generic(GenericMacro::Dff {
            set: set.is_some(),
            reset: reset.is_some(),
            enable: enable.is_some(),
        }),
    );
    nl.connect_named(ff, "D", d).expect("fresh dff pin");
    nl.connect_named(ff, "CLK", clk).expect("fresh dff pin");
    if let Some(s) = set {
        nl.connect_named(ff, "SET", s).expect("fresh dff pin");
    }
    if let Some(r) = reset {
        nl.connect_named(ff, "RST", r).expect("fresh dff pin");
    }
    if let Some(e) = enable {
        nl.connect_named(ff, "EN", e).expect("fresh dff pin");
    }
    let q = nl.add_net(format!("{name}_q"));
    nl.connect_named(ff, "Q", q).expect("fresh dff pin");
    (ff, q)
}

/// Declares input ports for a list of `(name, net)` pairs.
pub fn input_ports(nl: &mut Netlist, pairs: &[(String, NetId)]) {
    for (name, net) in pairs {
        nl.add_port(name.clone(), PinDir::In, *net);
    }
}

/// Declares output ports for a list of `(name, net)` pairs.
pub fn output_ports(nl: &mut Netlist, pairs: &[(String, NetId)]) {
    for (name, net) in pairs {
        nl.add_port(name.clone(), PinDir::Out, *net);
    }
}

/// Creates `n` fresh nets named `prefix0..prefix{n-1}` and the matching
/// `(name, net)` pairs.
pub fn net_bus(nl: &mut Netlist, prefix: &str, n: u8) -> Vec<(String, NetId)> {
    (0..n)
        .map(|i| {
            let name = format!("{prefix}{i}");
            let net = nl.add_net(name.clone());
            (name, net)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::Simulator;

    #[test]
    fn gate_tree_or_9_inputs() {
        let mut nl = Netlist::new("or9");
        let ins = net_bus(&mut nl, "a", 9);
        let nets: Vec<NetId> = ins.iter().map(|(_, n)| *n).collect();
        let y = gate_tree(&mut nl, GateFn::Or, &nets, 4, "t");
        input_ports(&mut nl, &ins);
        nl.add_port("y", PinDir::Out, y);
        // 9 inputs with fanin-4: 4+4+1 -> 2 gates + carry, then 3 -> 1 gate.
        assert_eq!(nl.component_count(), 3);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.settle();
        assert!(!sim.output("y").unwrap());
        sim.set_input("a7", true).unwrap();
        sim.settle();
        assert!(sim.output("y").unwrap());
    }

    #[test]
    fn inverting_tree_matches_nor() {
        let mut nl = Netlist::new("nor6");
        let ins = net_bus(&mut nl, "a", 6);
        let nets: Vec<NetId> = ins.iter().map(|(_, n)| *n).collect();
        let y = inverting_gate_tree(&mut nl, GateFn::Nor, &nets, 4, "t");
        input_ports(&mut nl, &ins);
        nl.add_port("y", PinDir::Out, y);
        let mut sim = Simulator::new(&nl).unwrap();
        for pattern in 0..64u32 {
            for i in 0..6 {
                sim.set_input(&format!("a{i}"), pattern >> i & 1 == 1)
                    .unwrap();
            }
            sim.settle();
            assert_eq!(
                sim.output("y").unwrap(),
                pattern == 0,
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn constants_are_shared() {
        let mut nl = Netlist::new("c");
        let v1 = vdd(&mut nl);
        let v2 = vdd(&mut nl);
        assert_eq!(v1, v2);
        let g1 = vss(&mut nl);
        let g2 = vss(&mut nl);
        assert_eq!(g1, g2);
        assert_eq!(nl.component_count(), 2);
    }
}
