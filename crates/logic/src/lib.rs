//! # milo-logic
//!
//! Boolean-logic substrate for the MILO reproduction (Vander Zanden &
//! Gajski, *MILO: A Microarchitecture and Logic Optimizer*, 1988).
//!
//! This crate provides the combinational machinery the synthesis pipeline
//! is built on:
//!
//! * [`TruthTable`] — complete tables of ≤ 6 inputs, including the 32-bit
//!   hash-table key of the paper's strategy 4 (Fig. 10);
//! * [`Cube`] / [`Cover`] — two-level sum-of-products forms with the
//!   unate-recursive complement and tautology operations;
//! * [`espresso`] — an ESPRESSO-style expand/irredundant/reduce minimizer
//!   (§2.1.1 and strategy 7);
//! * [`divide`] — weak (algebraic) division and kernel extraction;
//! * [`factor`] — good-factor area factoring plus the timing-driven gate
//!   decomposition of Fig. 4 (strategy 3);
//! * [`Network`] — a multi-level Boolean network with collapse and
//!   kernel-based re-synthesis.
//!
//! # Performance architecture
//!
//! The minimizer and factorizer are on the synthesis hot path and are
//! engineered accordingly (see `docs/PERFORMANCE.md`):
//!
//! * covers of ≤ 6 variables use **dense 64-bit row masks** for
//!   tautology, containment, irredundancy and reduction — the recursive
//!   unate paradigm only runs for wider covers;
//! * [`divide`] intersects candidate sets and filters the remainder via
//!   **hashed cube sets** instead of quadratic scans, and
//!   [`Cover::single_cube_containment`] dedups through a hash set with
//!   literal-count-pruned containment checks;
//! * [`KernelCache`] memoizes kernel extraction under canonical cover
//!   signatures; [`good_factor_with_cache`] / [`resynthesize_with_cache`]
//!   thread one cache across a whole network;
//! * [`espresso::minimize_many`] and [`resynthesize_outputs`] fan
//!   independent outputs across cores (via `milo-par`) with results in
//!   input order, so parallel runs stay deterministic.
//!
//! # Examples
//!
//! ```
//! use milo_logic::{espresso, Cover, TruthTable};
//!
//! let tt = TruthTable::from_fn(3, |r| r != 0); // x0 | x1 | x2
//! let res = espresso::minimize(&Cover::from_truth(&tt), None);
//! assert_eq!(res.cover.len(), 3);
//! assert_eq!(res.cover.literal_count(), 3);
//! ```

#![warn(missing_docs)]

mod cover;
mod cube;
pub mod divide;
pub mod espresso;
pub mod factor;
mod network;
mod truth;

pub use cover::Cover;
pub use cube::{Cube, Phase};
pub use divide::KernelCache;
pub use factor::{good_factor, good_factor_with_cache, timing_decompose, DecompTree, Expr};
pub use network::{resynthesize, resynthesize_outputs, resynthesize_with_cache, Network, NodeId};
pub use truth::TruthTable;
