//! Multi-level factoring.
//!
//! Two factoring modes from the paper:
//!
//! * **Area factoring** (weak division): repeatedly extract the
//!   best-saving kernel — SOCRATES' path from two-level back to multi-level
//!   form (§2.1.1), used by strategy 7.
//! * **Timing-driven decomposition** (Fig. 4 / strategy 3): decompose a
//!   wide associative gate into a tree of narrower gates so that the
//!   latest-arriving input passes through the fewest levels.

use crate::divide::{divide, largest_common_cube, KernelCache};
use crate::{Cover, Cube, Phase};
use std::fmt;

/// A factored Boolean expression tree.
#[derive(Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant false / true.
    Const(bool),
    /// A literal `x_var` or `!x_var`.
    Lit(u8, Phase),
    /// Conjunction of sub-expressions.
    And(Vec<Expr>),
    /// Disjunction of sub-expressions.
    Or(Vec<Expr>),
}

impl Expr {
    /// Number of literal leaves — the standard factored-form cost.
    pub fn literal_count(&self) -> u32 {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit(..) => 1,
            Expr::And(xs) | Expr::Or(xs) => xs.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Depth in gate levels (literals are level 0).
    pub fn depth(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Lit(..) => 0,
            Expr::And(xs) | Expr::Or(xs) => 1 + xs.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }

    /// Evaluates under an assignment (bit `v` of `row` is `x_v`).
    pub fn eval(&self, row: u32) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Lit(v, Phase::Pos) => row >> v & 1 == 1,
            Expr::Lit(v, Phase::Neg) => row >> v & 1 == 0,
            Expr::And(xs) => xs.iter().all(|x| x.eval(row)),
            Expr::Or(xs) => xs.iter().any(|x| x.eval(row)),
        }
    }

    /// Flattens the expression back to a sum-of-products cover.
    pub fn to_cover(&self, nvars: u8) -> Cover {
        match self {
            Expr::Const(false) => Cover::zero(nvars),
            Expr::Const(true) => Cover::one(nvars),
            Expr::Lit(v, p) => Cover::literal(nvars, *v, *p),
            Expr::And(xs) => {
                let mut acc = Cover::one(nvars);
                for x in xs {
                    acc = acc.and(&x.to_cover(nvars));
                }
                acc
            }
            Expr::Or(xs) => {
                let mut acc = Cover::zero(nvars);
                for x in xs {
                    acc = acc.or(&x.to_cover(nvars));
                }
                acc
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Lit(v, Phase::Pos) => write!(f, "x{v}"),
            Expr::Lit(v, Phase::Neg) => write!(f, "!x{v}"),
            Expr::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn cube_to_expr(c: &Cube) -> Expr {
    let lits: Vec<Expr> = c.literals().map(|(v, p)| Expr::Lit(v, p)).collect();
    match lits.len() {
        0 => Expr::Const(true),
        1 => lits.into_iter().next().expect("one literal"),
        _ => Expr::And(lits),
    }
}

fn cover_sum_expr(f: &Cover) -> Expr {
    let terms: Vec<Expr> = f.cubes().iter().map(cube_to_expr).collect();
    match terms.len() {
        0 => Expr::Const(false),
        1 => terms.into_iter().next().expect("one term"),
        _ => Expr::Or(terms),
    }
}

/// Good-factor: recursive weak-division factoring driven by the
/// best-saving kernel. Falls back to the flat SOP when no kernel helps.
///
/// # Examples
///
/// ```
/// use milo_logic::{factor, Cover, Cube};
///
/// // ac | ad | bc | bd  ->  (a|b)&(c|d): 4 literals instead of 8.
/// let f = Cover::from_cubes(4, vec![
///     Cube::top().with_pos(0).with_pos(2),
///     Cube::top().with_pos(0).with_pos(3),
///     Cube::top().with_pos(1).with_pos(2),
///     Cube::top().with_pos(1).with_pos(3),
/// ]);
/// let e = factor::good_factor(&f);
/// assert_eq!(e.literal_count(), 4);
/// ```
pub fn good_factor(f: &Cover) -> Expr {
    good_factor_with_cache(f, &mut KernelCache::new())
}

/// [`good_factor`] with an explicit kernel memo cache.
///
/// Threading one [`KernelCache`] through many factoring calls (per
/// network, per optimization pass) lets structurally identical sub-covers
/// reuse previously computed kernel extractions — the quotient/remainder
/// recursion revisits the same sub-covers constantly.
pub fn good_factor_with_cache(f: &Cover, cache: &mut KernelCache) -> Expr {
    if f.is_empty() {
        return Expr::Const(false);
    }
    if f.cubes().iter().any(Cube::is_top) {
        return Expr::Const(true);
    }
    // Pull out the common cube first.
    let lcc = largest_common_cube(f);
    if !lcc.is_top() {
        let stripped: Vec<Cube> = f
            .cubes()
            .iter()
            .map(|c| c.algebraic_quotient(&lcc).expect("common cube divides"))
            .collect();
        let inner = good_factor_with_cache(&Cover::from_cubes(f.nvars(), stripped), cache);
        let mut parts = vec![cube_to_expr(&lcc)];
        match inner {
            Expr::And(xs) => parts.extend(xs),
            Expr::Const(true) => {}
            other => parts.push(other),
        }
        return if parts.len() == 1 {
            parts.into_iter().next().expect("one part")
        } else {
            Expr::And(parts)
        };
    }
    match cache.best_kernel(f) {
        None => cover_sum_expr(f),
        Some(k) => {
            let div = divide(f, &k.kernel);
            if div.quotient.is_empty() {
                return cover_sum_expr(f);
            }
            let d_expr = good_factor_with_cache(&k.kernel, cache);
            let q_expr = good_factor_with_cache(&div.quotient, cache);
            let product = Expr::And(vec![d_expr, q_expr]);
            if div.remainder.is_empty() {
                product
            } else {
                let r_expr = good_factor_with_cache(&div.remainder, cache);
                let mut terms = vec![product];
                match r_expr {
                    Expr::Or(xs) => terms.extend(xs),
                    other => terms.push(other),
                }
                Expr::Or(terms)
            }
        }
    }
}

/// Timing-driven decomposition of an `n`-ary associative gate (Fig. 4 /
/// strategy 3).
///
/// Builds a tree over `inputs` (with per-input `arrival` times) using gates
/// of at most `max_fanin` inputs, greedily combining the *earliest*
/// arriving signals first (Huffman-style), so the latest signal traverses
/// the fewest levels. Returns the nesting as lists of merged groups: each
/// step merges the first `k` entries of the work list.
///
/// The returned tree is expressed over input indices `0..inputs`.
///
/// # Panics
///
/// Panics if `max_fanin < 2` or `inputs == 0` or the lengths differ.
#[derive(Clone, Debug, PartialEq)]
pub enum DecompTree {
    /// An original input (by index) with its arrival time.
    Leaf(usize),
    /// A gate combining sub-trees.
    Node(Vec<DecompTree>),
}

impl DecompTree {
    /// Completion time of this subtree under unit gate delay.
    pub fn ready_time(&self, arrival: &[f64]) -> f64 {
        match self {
            DecompTree::Leaf(i) => arrival[*i],
            DecompTree::Node(children) => {
                1.0 + children
                    .iter()
                    .map(|c| c.ready_time(arrival))
                    .fold(f64::MIN, f64::max)
            }
        }
    }

    /// Number of gate nodes in the tree.
    pub fn gate_count(&self) -> usize {
        match self {
            DecompTree::Leaf(_) => 0,
            DecompTree::Node(children) => {
                1 + children.iter().map(DecompTree::gate_count).sum::<usize>()
            }
        }
    }

    /// Depth experienced by input `idx` (levels from that leaf to the root),
    /// or `None` if the input does not appear.
    pub fn depth_of(&self, idx: usize) -> Option<u32> {
        match self {
            DecompTree::Leaf(i) => (*i == idx).then_some(0),
            DecompTree::Node(children) => {
                children.iter().find_map(|c| c.depth_of(idx)).map(|d| d + 1)
            }
        }
    }
}

/// Builds the timing-driven decomposition tree. See [`DecompTree`].
pub fn timing_decompose(arrival: &[f64], max_fanin: usize) -> DecompTree {
    assert!(max_fanin >= 2, "gates need at least two inputs");
    assert!(!arrival.is_empty(), "need at least one input");
    let mut work: Vec<DecompTree> = (0..arrival.len()).map(DecompTree::Leaf).collect();
    if work.len() == 1 {
        return work.pop().expect("one entry");
    }
    while work.len() > 1 {
        // Sort by readiness: earliest first.
        work.sort_by(|a, b| {
            a.ready_time(arrival)
                .partial_cmp(&b.ready_time(arrival))
                .expect("arrival times are not NaN")
        });
        let take = max_fanin.min(work.len());
        let group: Vec<DecompTree> = work.drain(..take).collect();
        work.push(DecompTree::Node(group));
    }
    work.pop().expect("one tree remains")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(pos: &[u8]) -> Cube {
        let mut c = Cube::top();
        for &v in pos {
            c = c.with_pos(v);
        }
        c
    }

    #[test]
    fn factor_preserves_function() {
        let f = Cover::from_cubes(
            4,
            vec![cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3])],
        );
        let e = good_factor(&f);
        assert!(e.to_cover(4).equivalent(&f));
        assert_eq!(e.literal_count(), 4);
    }

    #[test]
    fn factor_with_common_cube() {
        // abc | abd = ab(c|d)
        let f = Cover::from_cubes(4, vec![cube(&[0, 1, 2]), cube(&[0, 1, 3])]);
        let e = good_factor(&f);
        assert_eq!(e.literal_count(), 4);
        assert!(e.to_cover(4).equivalent(&f));
    }

    #[test]
    fn factor_constant_covers() {
        assert_eq!(good_factor(&Cover::zero(3)), Expr::Const(false));
        assert_eq!(good_factor(&Cover::one(3)), Expr::Const(true));
    }

    #[test]
    fn factor_single_literal() {
        let f = Cover::literal(3, 1, Phase::Neg);
        assert_eq!(good_factor(&f), Expr::Lit(1, Phase::Neg));
    }

    #[test]
    fn timing_decompose_favors_late_input() {
        // Fig. 4: a 3-input AND where one input arrives late; the late
        // input should see fewer levels than the early ones.
        let arrival = [0.0, 0.0, 5.0];
        let tree = timing_decompose(&arrival, 2);
        let late_depth = tree.depth_of(2).expect("input present");
        let early_depth = tree.depth_of(0).expect("input present");
        assert!(late_depth <= early_depth);
        assert_eq!(late_depth, 1, "late input goes straight to the root gate");
    }

    #[test]
    fn timing_decompose_balanced_when_equal() {
        let arrival = [0.0; 8];
        let tree = timing_decompose(&arrival, 2);
        assert_eq!(tree.gate_count(), 7);
        // Balanced tree of 8 leaves with fanin 2 has depth 3: readiness 3.
        assert!((tree.ready_time(&arrival) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn timing_decompose_wide_gates() {
        let arrival = [0.0; 9];
        let tree = timing_decompose(&arrival, 4);
        // 9 leaves, fanin 4: 4+4 -> 2 nodes + 1 leaf -> 3 -> root: 3 gates.
        assert_eq!(tree.gate_count(), 3);
    }

    #[test]
    fn expr_eval_matches_cover() {
        let f = Cover::from_cubes(3, vec![cube(&[0, 1]), cube(&[2])]);
        let e = good_factor(&f);
        for row in 0..8 {
            assert_eq!(e.eval(row), f.eval(row), "row {row}");
        }
    }
}
