//! Algebraic (weak) division and kernel extraction — the machinery behind
//! SOCRATES' "weak-division to find common subterms" (§2.1.1) and MILO's
//! strategies 3 and 7 (§4.1.2).

use crate::{Cover, Cube};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Result of dividing a cover `f` by a divisor `d`: `f = d·q + r`
/// (algebraically, i.e. treating cubes as products of distinct literals).
#[derive(Clone, Debug)]
pub struct Division {
    /// The quotient `q`.
    pub quotient: Cover,
    /// The remainder `r`.
    pub remainder: Cover,
}

/// Weak (algebraic) division of `f` by `d`.
///
/// The quotient is the largest cover `q` with `f ⊇ d·q` algebraically; the
/// remainder collects the cubes of `f` not expressible as `d·q`.
///
/// # Examples
///
/// ```
/// use milo_logic::{divide, Cover, Cube};
///
/// // f = a·c | a·d | b·c | b·d | e  divided by  d = a | b
/// let f = Cover::from_cubes(5, vec![
///     Cube::top().with_pos(0).with_pos(2),
///     Cube::top().with_pos(0).with_pos(3),
///     Cube::top().with_pos(1).with_pos(2),
///     Cube::top().with_pos(1).with_pos(3),
///     Cube::top().with_pos(4),
/// ]);
/// let d = Cover::from_cubes(5, vec![Cube::top().with_pos(0), Cube::top().with_pos(1)]);
/// let div = divide::divide(&f, &d);
/// assert_eq!(div.quotient.len(), 2); // c | d
/// assert_eq!(div.remainder.len(), 1); // e
/// ```
pub fn divide(f: &Cover, d: &Cover) -> Division {
    assert_eq!(f.nvars(), d.nvars());
    let nvars = f.nvars();
    if d.is_empty() {
        return Division {
            quotient: Cover::zero(nvars),
            remainder: f.clone(),
        };
    }
    // Candidate quotients for the first divisor cube, in f-order (this
    // fixes the quotient's deterministic cube order); hashed candidate
    // sets for the remaining divisor cubes so the intersection below is
    // O(|f|·|d|) instead of the quadratic Vec::contains scan.
    let (first_dc, rest_dc) = d.cubes().split_first().expect("divisor is non-empty");
    let mut first_set: Vec<Cube> = Vec::new();
    let mut first_seen: HashSet<Cube> = HashSet::new();
    for fc in f.cubes() {
        if let Some(q) = fc.algebraic_quotient(first_dc) {
            // Algebraic division requires disjoint supports between the
            // divisor cube and the quotient cube.
            if q.support_mask() & first_dc.support_mask() == 0 && first_seen.insert(q) {
                first_set.push(q);
            }
        }
    }
    let rest_sets: Vec<HashSet<Cube>> = rest_dc
        .iter()
        .map(|dc| {
            f.cubes()
                .iter()
                .filter_map(|fc| fc.algebraic_quotient(dc))
                .filter(|q| q.support_mask() & dc.support_mask() == 0)
                .collect()
        })
        .collect();
    // Quotient = intersection of candidate sets.
    let quotient_cubes: Vec<Cube> = first_set
        .into_iter()
        .filter(|q| rest_sets.iter().all(|set| set.contains(q)))
        .collect();
    let quotient = Cover::from_cubes(nvars, quotient_cubes);
    // Remainder = cubes of f not produced by d * quotient (hashed
    // membership test instead of Vec::contains per f-cube).
    let mut produced: HashSet<Cube> = HashSet::with_capacity(d.len() * quotient.len());
    for dc in d.cubes() {
        for qc in quotient.cubes() {
            produced.insert(dc.intersect(qc));
        }
    }
    let remainder_cubes: Vec<Cube> = f
        .cubes()
        .iter()
        .filter(|fc| !produced.contains(fc))
        .copied()
        .collect();
    Division {
        quotient,
        remainder: Cover::from_cubes(nvars, remainder_cubes),
    }
}

/// A kernel of a cover together with its co-kernel cube.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The cube-free quotient (the kernel itself).
    pub kernel: Cover,
    /// The cube that was divided out (the co-kernel).
    pub co_kernel: Cube,
}

/// Computes the set of kernels of `f` (including, per convention, `f`
/// itself when it is cube-free).
///
/// Kernels are the cube-free primary divisors; common kernels across
/// functions expose multi-cube common subexpressions — the basis of weak
/// division factoring.
pub fn kernels(f: &Cover) -> Vec<Kernel> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<Vec<(u32, u32)>> = BTreeSet::new();
    kernels_rec(f, 0, Cube::top(), &mut out, &mut seen);
    // f itself, if cube-free.
    if largest_common_cube(f).is_top() && f.len() > 1 {
        let key = cover_key(f);
        if seen.insert(key) {
            out.push(Kernel {
                kernel: f.clone(),
                co_kernel: Cube::top(),
            });
        }
    }
    out
}

fn cover_key(f: &Cover) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = f.cubes().iter().map(|c| (c.pos(), c.neg())).collect();
    v.sort_unstable();
    v
}

fn kernels_rec(
    f: &Cover,
    start_var: u8,
    co_kernel: Cube,
    out: &mut Vec<Kernel>,
    seen: &mut BTreeSet<Vec<(u32, u32)>>,
) {
    let nvars = f.nvars();
    // One pass over the cubes counts every literal's occurrences, instead
    // of re-scanning the cover once per (variable, phase) pair.
    let mut pos_count = [0u32; Cube::MAX_VARS as usize];
    let mut neg_count = [0u32; Cube::MAX_VARS as usize];
    for c in f.cubes() {
        let (mut p, mut n) = (c.pos(), c.neg());
        while p != 0 {
            let v = p.trailing_zeros() as usize;
            pos_count[v] += 1;
            p &= p - 1;
        }
        while n != 0 {
            let v = n.trailing_zeros() as usize;
            neg_count[v] += 1;
            n &= n - 1;
        }
    }
    for v in start_var..nvars {
        for phase in [crate::Phase::Pos, crate::Phase::Neg] {
            let lit = Cube::top().with_literal(v, phase);
            // Count cubes containing this literal.
            let count = match phase {
                crate::Phase::Pos => pos_count[v as usize],
                crate::Phase::Neg => neg_count[v as usize],
            };
            if count < 2 {
                continue;
            }
            let d = Cover::from_cube(nvars, lit);
            let q = divide(f, &d).quotient;
            if q.is_empty() {
                continue;
            }
            // Make the quotient cube-free.
            let lcc = largest_common_cube(&q);
            let q = if lcc.is_top() {
                q
            } else {
                strip_cube(&q, &lcc)
            };
            let new_cok = co_kernel.intersect(&lit).intersect(&lcc);
            if q.len() > 1 {
                let key = cover_key(&q);
                if seen.insert(key) {
                    out.push(Kernel {
                        kernel: q.clone(),
                        co_kernel: new_cok,
                    });
                }
                kernels_rec(&q, v + 1, new_cok, out, seen);
            }
        }
    }
}

/// The largest cube dividing every cube of `f` (its common-literal cube).
pub fn largest_common_cube(f: &Cover) -> Cube {
    let mut iter = f.cubes().iter();
    match iter.next() {
        None => Cube::top(),
        Some(first) => {
            let mut pos = first.pos();
            let mut neg = first.neg();
            for c in iter {
                pos &= c.pos();
                neg &= c.neg();
            }
            Cube::from_masks(pos, neg)
        }
    }
}

/// Divides every cube of `f` by `cube` (which must divide each cube).
fn strip_cube(f: &Cover, cube: &Cube) -> Cover {
    let cubes = f
        .cubes()
        .iter()
        .map(|c| c.algebraic_quotient(cube).expect("cube divides all cubes"))
        .collect();
    Cover::from_cubes(f.nvars(), cubes)
}

/// Picks the kernel whose extraction saves the most literals, if any.
///
/// The saving estimate for factoring `f = d·q + r` counts literals of
/// `d + q + r` against literals of `f`.
pub fn best_kernel(f: &Cover) -> Option<Kernel> {
    let ks = kernels(f);
    let base = f.literal_count() as i64;
    let mut best: Option<(i64, Kernel)> = None;
    for k in ks {
        if k.kernel.len() < 2 {
            continue;
        }
        let div = divide(f, &k.kernel);
        if div.quotient.is_empty() {
            continue;
        }
        let new_cost = k.kernel.literal_count() as i64
            + div.quotient.literal_count() as i64
            + div.remainder.literal_count() as i64;
        let saving = base - new_cost;
        if saving > 0 && best.as_ref().is_none_or(|(s, _)| saving > *s) {
            best = Some((saving, k));
        }
    }
    best.map(|(_, k)| k)
}

/// Memo cache for kernel extraction and best-kernel selection.
///
/// Keys are canonical cover signatures (sorted `(pos, neg)` mask pairs
/// plus the variable count), so structurally identical sub-covers reached
/// from different co-kernels — or re-extracted on a later pass over the
/// same network — reuse the previously computed result instead of
/// re-running the recursive kernel search. The factoring entry points
/// ([`crate::good_factor_with_cache`], [`crate::resynthesize_with_cache`])
/// thread one cache through a whole network so repeated extraction is
/// amortized, which is where strategies 3 and 7 spend their time.
#[derive(Debug, Default)]
pub struct KernelCache {
    kernels: HashMap<CoverKey, Vec<Kernel>>,
    best: HashMap<CoverKey, Option<Kernel>>,
    hits: u64,
    misses: u64,
}

/// Canonical cover signature: variable count plus sorted cube mask pairs.
type CoverKey = (u8, Vec<(u32, u32)>);

impl KernelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` counters over both memo tables.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached entries across both tables.
    pub fn len(&self) -> usize {
        self.kernels.len() + self.best.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty() && self.best.is_empty()
    }

    fn key(f: &Cover) -> CoverKey {
        (f.nvars(), cover_key(f))
    }

    /// Memoized [`kernels`].
    pub fn kernels(&mut self, f: &Cover) -> Vec<Kernel> {
        let key = Self::key(f);
        if let Some(ks) = self.kernels.get(&key) {
            self.hits += 1;
            return ks.clone();
        }
        self.misses += 1;
        let ks = kernels(f);
        self.kernels.insert(key, ks.clone());
        ks
    }

    /// Memoized [`best_kernel`].
    pub fn best_kernel(&mut self, f: &Cover) -> Option<Kernel> {
        let key = Self::key(f);
        if let Some(k) = self.best.get(&key) {
            self.hits += 1;
            return k.clone();
        }
        self.misses += 1;
        let k = best_kernel(f);
        self.best.insert(key, k.clone());
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn cube(pos: &[u8]) -> Cube {
        let mut c = Cube::top();
        for &v in pos {
            c = c.with_pos(v);
        }
        c
    }

    #[test]
    fn divide_exact() {
        // f = ab | ac,  d = b | c  =>  q = a, r = 0
        let f = Cover::from_cubes(3, vec![cube(&[0, 1]), cube(&[0, 2])]);
        let d = Cover::from_cubes(3, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.quotient.cubes()[0], cube(&[0]));
        assert!(div.remainder.is_empty());
    }

    #[test]
    fn divide_with_remainder() {
        // f = ab | ac | d,  d = b | c  =>  q = a, r = d
        let f = Cover::from_cubes(4, vec![cube(&[0, 1]), cube(&[0, 2]), cube(&[3])]);
        let d = Cover::from_cubes(4, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.remainder.len(), 1);
        assert_eq!(div.remainder.cubes()[0], cube(&[3]));
    }

    #[test]
    fn divide_by_nondivisor() {
        let f = Cover::from_cubes(3, vec![cube(&[0])]);
        let d = Cover::from_cubes(3, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert!(div.quotient.is_empty());
        assert_eq!(div.remainder.len(), 1);
    }

    #[test]
    fn divide_respects_phases() {
        // f = a!b | ab — dividing by b must not pick up a!b.
        let f = Cover::from_cubes(
            2,
            vec![
                Cube::top().with_pos(0).with_neg(1),
                Cube::top().with_pos(0).with_pos(1),
            ],
        );
        let d = Cover::literal(2, 1, Phase::Pos);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.quotient.cubes()[0], cube(&[0]));
        assert_eq!(div.remainder.len(), 1);
    }

    #[test]
    fn kernels_of_textbook_example() {
        // f = adf + aef + bdf + bef + cdf + cef + g
        //   = ((a+b+c)(d+e))f + g
        let mk = |vs: &[u8]| cube(vs);
        let f = Cover::from_cubes(
            7,
            vec![
                mk(&[0, 3, 5]),
                mk(&[0, 4, 5]),
                mk(&[1, 3, 5]),
                mk(&[1, 4, 5]),
                mk(&[2, 3, 5]),
                mk(&[2, 4, 5]),
                mk(&[6]),
            ],
        );
        let ks = kernels(&f);
        // Expect kernels containing (a+b+c) and (d+e) among others.
        let has_abc = ks.iter().any(|k| {
            k.kernel.len() == 3 && k.kernel.cubes().iter().all(|c| c.literal_count() == 1)
        });
        let has_de = ks.iter().any(|k| {
            k.kernel.len() == 2 && k.kernel.cubes().iter().all(|c| c.literal_count() == 1)
        });
        assert!(has_abc, "missing (a+b+c)-like kernel: {ks:?}");
        assert!(has_de, "missing (d+e)-like kernel: {ks:?}");
    }

    #[test]
    fn best_kernel_saves_literals() {
        // f = ac | ad | bc | bd: extracting (a+b) or (c+d) saves literals.
        let f = Cover::from_cubes(
            4,
            vec![cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3])],
        );
        let k = best_kernel(&f).expect("a kernel should save literals");
        assert_eq!(k.kernel.len(), 2);
        let div = divide(&f, &k.kernel);
        let new_cost =
            k.kernel.literal_count() + div.quotient.literal_count() + div.remainder.literal_count();
        assert!(new_cost < f.literal_count());
    }

    #[test]
    fn largest_common_cube_finds_shared_literals() {
        let f = Cover::from_cubes(3, vec![cube(&[0, 1]), cube(&[0, 2])]);
        assert_eq!(largest_common_cube(&f), cube(&[0]));
    }

    #[test]
    fn no_kernel_in_single_cube() {
        let f = Cover::from_cube(3, cube(&[0, 1, 2]));
        assert!(best_kernel(&f).is_none());
    }

    #[test]
    fn cache_agrees_with_uncached() {
        let f = Cover::from_cubes(
            4,
            vec![cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3])],
        );
        let mut cache = KernelCache::new();
        let cached = cache.kernels(&f);
        let plain = kernels(&f);
        assert_eq!(cached.len(), plain.len());
        for (a, b) in cached.iter().zip(&plain) {
            assert_eq!(cover_key(&a.kernel), cover_key(&b.kernel));
            assert_eq!(a.co_kernel, b.co_kernel);
        }
        let best_cached = cache.best_kernel(&f).unwrap();
        let best_plain = best_kernel(&f).unwrap();
        assert_eq!(
            cover_key(&best_cached.kernel),
            cover_key(&best_plain.kernel)
        );
        // Second queries hit.
        let (h0, _) = cache.stats();
        cache.kernels(&f);
        cache.best_kernel(&f);
        let (h1, _) = cache.stats();
        assert_eq!(h1, h0 + 2);
    }
}
