//! Algebraic (weak) division and kernel extraction — the machinery behind
//! SOCRATES' "weak-division to find common subterms" (§2.1.1) and MILO's
//! strategies 3 and 7 (§4.1.2).

use crate::{Cover, Cube};
use std::collections::BTreeSet;

/// Result of dividing a cover `f` by a divisor `d`: `f = d·q + r`
/// (algebraically, i.e. treating cubes as products of distinct literals).
#[derive(Clone, Debug)]
pub struct Division {
    /// The quotient `q`.
    pub quotient: Cover,
    /// The remainder `r`.
    pub remainder: Cover,
}

/// Weak (algebraic) division of `f` by `d`.
///
/// The quotient is the largest cover `q` with `f ⊇ d·q` algebraically; the
/// remainder collects the cubes of `f` not expressible as `d·q`.
///
/// # Examples
///
/// ```
/// use milo_logic::{divide, Cover, Cube};
///
/// // f = a·c | a·d | b·c | b·d | e  divided by  d = a | b
/// let f = Cover::from_cubes(5, vec![
///     Cube::top().with_pos(0).with_pos(2),
///     Cube::top().with_pos(0).with_pos(3),
///     Cube::top().with_pos(1).with_pos(2),
///     Cube::top().with_pos(1).with_pos(3),
///     Cube::top().with_pos(4),
/// ]);
/// let d = Cover::from_cubes(5, vec![Cube::top().with_pos(0), Cube::top().with_pos(1)]);
/// let div = divide::divide(&f, &d);
/// assert_eq!(div.quotient.len(), 2); // c | d
/// assert_eq!(div.remainder.len(), 1); // e
/// ```
pub fn divide(f: &Cover, d: &Cover) -> Division {
    assert_eq!(f.nvars(), d.nvars());
    let nvars = f.nvars();
    if d.is_empty() {
        return Division { quotient: Cover::zero(nvars), remainder: f.clone() };
    }
    // For each divisor cube, the set of quotient candidates.
    let mut candidate_sets: Vec<Vec<Cube>> = Vec::with_capacity(d.len());
    for dc in d.cubes() {
        let mut set: Vec<Cube> = Vec::new();
        for fc in f.cubes() {
            if let Some(q) = fc.algebraic_quotient(dc) {
                // Algebraic division requires disjoint supports between the
                // divisor cube and the quotient cube.
                if q.support_mask() & dc.support_mask() == 0 && !set.contains(&q) {
                    set.push(q);
                }
            }
        }
        candidate_sets.push(set);
    }
    // Quotient = intersection of candidate sets.
    let mut quotient_cubes: Vec<Cube> = Vec::new();
    if let Some((first, rest)) = candidate_sets.split_first() {
        'cand: for q in first {
            for set in rest {
                if !set.contains(q) {
                    continue 'cand;
                }
            }
            quotient_cubes.push(*q);
        }
    }
    let quotient = Cover::from_cubes(nvars, quotient_cubes);
    // Remainder = cubes of f not produced by d * quotient.
    let mut produced: Vec<Cube> = Vec::new();
    for dc in d.cubes() {
        for qc in quotient.cubes() {
            produced.push(dc.intersect(qc));
        }
    }
    let remainder_cubes: Vec<Cube> =
        f.cubes().iter().filter(|fc| !produced.contains(fc)).copied().collect();
    Division { quotient, remainder: Cover::from_cubes(nvars, remainder_cubes) }
}

/// A kernel of a cover together with its co-kernel cube.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The cube-free quotient (the kernel itself).
    pub kernel: Cover,
    /// The cube that was divided out (the co-kernel).
    pub co_kernel: Cube,
}

/// Computes the set of kernels of `f` (including, per convention, `f`
/// itself when it is cube-free).
///
/// Kernels are the cube-free primary divisors; common kernels across
/// functions expose multi-cube common subexpressions — the basis of weak
/// division factoring.
pub fn kernels(f: &Cover) -> Vec<Kernel> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<Vec<(u32, u32)>> = BTreeSet::new();
    kernels_rec(f, 0, Cube::top(), &mut out, &mut seen);
    // f itself, if cube-free.
    if largest_common_cube(f).is_top() && f.len() > 1 {
        let key = cover_key(f);
        if seen.insert(key) {
            out.push(Kernel { kernel: f.clone(), co_kernel: Cube::top() });
        }
    }
    out
}

fn cover_key(f: &Cover) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = f.cubes().iter().map(|c| (c.pos(), c.neg())).collect();
    v.sort_unstable();
    v
}

fn kernels_rec(
    f: &Cover,
    start_var: u8,
    co_kernel: Cube,
    out: &mut Vec<Kernel>,
    seen: &mut BTreeSet<Vec<(u32, u32)>>,
) {
    let nvars = f.nvars();
    for v in start_var..nvars {
        for phase in [crate::Phase::Pos, crate::Phase::Neg] {
            let lit = Cube::top().with_literal(v, phase);
            // Count cubes containing this literal.
            let count = f.cubes().iter().filter(|c| c.algebraic_quotient(&lit).is_some() && c.literal(v) == Some(phase)).count();
            if count < 2 {
                continue;
            }
            let d = Cover::from_cube(nvars, lit);
            let q = divide(f, &d).quotient;
            if q.is_empty() {
                continue;
            }
            // Make the quotient cube-free.
            let lcc = largest_common_cube(&q);
            let q = if lcc.is_top() { q } else { strip_cube(&q, &lcc) };
            let new_cok = co_kernel.intersect(&lit).intersect(&lcc);
            if q.len() > 1 {
                let key = cover_key(&q);
                if seen.insert(key) {
                    out.push(Kernel { kernel: q.clone(), co_kernel: new_cok });
                }
                kernels_rec(&q, v + 1, new_cok, out, seen);
            }
        }
    }
}

/// The largest cube dividing every cube of `f` (its common-literal cube).
pub fn largest_common_cube(f: &Cover) -> Cube {
    let mut iter = f.cubes().iter();
    match iter.next() {
        None => Cube::top(),
        Some(first) => {
            let mut pos = first.pos();
            let mut neg = first.neg();
            for c in iter {
                pos &= c.pos();
                neg &= c.neg();
            }
            Cube::from_masks(pos, neg)
        }
    }
}

/// Divides every cube of `f` by `cube` (which must divide each cube).
fn strip_cube(f: &Cover, cube: &Cube) -> Cover {
    let cubes = f
        .cubes()
        .iter()
        .map(|c| c.algebraic_quotient(cube).expect("cube divides all cubes"))
        .collect();
    Cover::from_cubes(f.nvars(), cubes)
}

/// Picks the kernel whose extraction saves the most literals, if any.
///
/// The saving estimate for factoring `f = d·q + r` counts literals of
/// `d + q + r` against literals of `f`.
pub fn best_kernel(f: &Cover) -> Option<Kernel> {
    let ks = kernels(f);
    let base = f.literal_count() as i64;
    let mut best: Option<(i64, Kernel)> = None;
    for k in ks {
        if k.kernel.len() < 2 {
            continue;
        }
        let div = divide(f, &k.kernel);
        if div.quotient.is_empty() {
            continue;
        }
        let new_cost = k.kernel.literal_count() as i64
            + div.quotient.literal_count() as i64
            + div.remainder.literal_count() as i64;
        let saving = base - new_cost;
        if saving > 0 && best.as_ref().map_or(true, |(s, _)| saving > *s) {
            best = Some((saving, k));
        }
    }
    best.map(|(_, k)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn cube(pos: &[u8]) -> Cube {
        let mut c = Cube::top();
        for &v in pos {
            c = c.with_pos(v);
        }
        c
    }

    #[test]
    fn divide_exact() {
        // f = ab | ac,  d = b | c  =>  q = a, r = 0
        let f = Cover::from_cubes(3, vec![cube(&[0, 1]), cube(&[0, 2])]);
        let d = Cover::from_cubes(3, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.quotient.cubes()[0], cube(&[0]));
        assert!(div.remainder.is_empty());
    }

    #[test]
    fn divide_with_remainder() {
        // f = ab | ac | d,  d = b | c  =>  q = a, r = d
        let f = Cover::from_cubes(4, vec![cube(&[0, 1]), cube(&[0, 2]), cube(&[3])]);
        let d = Cover::from_cubes(4, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.remainder.len(), 1);
        assert_eq!(div.remainder.cubes()[0], cube(&[3]));
    }

    #[test]
    fn divide_by_nondivisor() {
        let f = Cover::from_cubes(3, vec![cube(&[0])]);
        let d = Cover::from_cubes(3, vec![cube(&[1]), cube(&[2])]);
        let div = divide(&f, &d);
        assert!(div.quotient.is_empty());
        assert_eq!(div.remainder.len(), 1);
    }

    #[test]
    fn divide_respects_phases() {
        // f = a!b | ab — dividing by b must not pick up a!b.
        let f = Cover::from_cubes(2, vec![
            Cube::top().with_pos(0).with_neg(1),
            Cube::top().with_pos(0).with_pos(1),
        ]);
        let d = Cover::literal(2, 1, Phase::Pos);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.len(), 1);
        assert_eq!(div.quotient.cubes()[0], cube(&[0]));
        assert_eq!(div.remainder.len(), 1);
    }

    #[test]
    fn kernels_of_textbook_example() {
        // f = adf + aef + bdf + bef + cdf + cef + g
        //   = ((a+b+c)(d+e))f + g
        let mk = |vs: &[u8]| cube(vs);
        let f = Cover::from_cubes(7, vec![
            mk(&[0, 3, 5]),
            mk(&[0, 4, 5]),
            mk(&[1, 3, 5]),
            mk(&[1, 4, 5]),
            mk(&[2, 3, 5]),
            mk(&[2, 4, 5]),
            mk(&[6]),
        ]);
        let ks = kernels(&f);
        // Expect kernels containing (a+b+c) and (d+e) among others.
        let has_abc = ks.iter().any(|k| {
            k.kernel.len() == 3 && k.kernel.cubes().iter().all(|c| c.literal_count() == 1)
        });
        let has_de = ks.iter().any(|k| {
            k.kernel.len() == 2 && k.kernel.cubes().iter().all(|c| c.literal_count() == 1)
        });
        assert!(has_abc, "missing (a+b+c)-like kernel: {ks:?}");
        assert!(has_de, "missing (d+e)-like kernel: {ks:?}");
    }

    #[test]
    fn best_kernel_saves_literals() {
        // f = ac | ad | bc | bd: extracting (a+b) or (c+d) saves literals.
        let f = Cover::from_cubes(4, vec![
            cube(&[0, 2]),
            cube(&[0, 3]),
            cube(&[1, 2]),
            cube(&[1, 3]),
        ]);
        let k = best_kernel(&f).expect("a kernel should save literals");
        assert_eq!(k.kernel.len(), 2);
        let div = divide(&f, &k.kernel);
        let new_cost =
            k.kernel.literal_count() + div.quotient.literal_count() + div.remainder.literal_count();
        assert!(new_cost < f.literal_count());
    }

    #[test]
    fn largest_common_cube_finds_shared_literals() {
        let f = Cover::from_cubes(3, vec![cube(&[0, 1]), cube(&[0, 2])]);
        assert_eq!(largest_common_cube(&f), cube(&[0]));
    }

    #[test]
    fn no_kernel_in_single_cube() {
        let f = Cover::from_cube(3, cube(&[0, 1, 2]));
        assert!(best_kernel(&f).is_none());
    }
}
