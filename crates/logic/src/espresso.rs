//! A compact reimplementation of the ESPRESSO two-level minimization loop
//! (expand → irredundant → reduce, iterated to a fixed point).
//!
//! The paper leans on ESPRESSO IIC twice: SOCRATES uses it as the central
//! minimizer (§2.1.1), and MILO's strategy 7 "expands the design into
//! two-level SOP form then minimizes by removing redundant terms" (§4.1.2).
//! We implement the heuristic loop over the cube/cover substrate of this
//! crate; it is not the full ESPRESSO IIC, but it produces irredundant prime
//! covers, which is all the optimizer needs.

use crate::{Cover, Cube};

/// Outcome of a [`minimize`] run.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The minimized cover (irredundant, all cubes prime w.r.t. ON ∪ DC).
    pub cover: Cover,
    /// Number of expand/irredundant/reduce passes executed.
    pub passes: u32,
    /// Literal count before minimization.
    pub literals_before: u32,
    /// Literal count after minimization.
    pub literals_after: u32,
}

/// Minimizes `on` against the optional don't-care set `dc`.
///
/// The result covers every minterm of `on`, no minterm of the OFF-set
/// (complement of `on ∪ dc`), and is an irredundant prime cover.
///
/// # Examples
///
/// ```
/// use milo_logic::{espresso, Cover, TruthTable};
///
/// // Full minterm cover of XOR-free function x0 | x1 collapses to 2 cubes.
/// let tt = TruthTable::from_fn(2, |r| r != 0);
/// let messy = Cover::from_truth(&tt);
/// let min = espresso::minimize(&messy, None);
/// assert_eq!(min.cover.len(), 2);
/// assert!(min.cover.to_truth() == tt);
/// ```
pub fn minimize(on: &Cover, dc: Option<&Cover>) -> MinimizeResult {
    let literals_before = on.literal_count();
    let nvars = on.nvars();
    let dc = dc.cloned().unwrap_or_else(|| Cover::zero(nvars));
    assert_eq!(
        dc.nvars(),
        nvars,
        "don't-care set must range over the same variables"
    );

    // OFF-set = !(ON | DC).
    let off = on.or(&dc).complement();
    // Care cover the result must keep covering: ON ∪ DC (for redundancy
    // tests we check against ON only, with DC as a helper).
    let mut f = on.clone();
    f.single_cube_containment();

    let mut passes = 0u32;
    let mut best_cost = cost(&f);
    loop {
        passes += 1;
        f = expand(&f, &off);
        f = irredundant(&f, &dc);
        let c = cost(&f);
        if c >= best_cost && passes > 1 {
            break;
        }
        best_cost = c;
        f = reduce(&f, &dc);
        f = expand(&f, &off);
        f = irredundant(&f, &dc);
        let c = cost(&f);
        if c >= best_cost {
            break;
        }
        best_cost = c;
        if passes >= 10 {
            break;
        }
    }
    let literals_after = f.literal_count();
    MinimizeResult {
        cover: f,
        passes,
        literals_before,
        literals_after,
    }
}

/// Minimizes many independent covers (one per circuit output), in
/// parallel when enough work is available.
///
/// Results are returned in input order regardless of scheduling, so
/// parallel runs are deterministic. This is the per-output entry point
/// the multi-output resynthesis path uses.
pub fn minimize_many(covers: &[Cover]) -> Vec<MinimizeResult> {
    // Only fan out when there are enough independent outputs to amortize
    // thread startup; tiny batches run inline.
    let parallel = covers.len() >= 2 && covers.iter().map(|c| c.len()).sum::<usize>() >= 32;
    if parallel {
        milo_par::par_map(covers, |c| minimize(c, None))
    } else {
        covers.iter().map(|c| minimize(c, None)).collect()
    }
}

/// Cost = (cubes, literals); lexicographic, fewer is better.
fn cost(f: &Cover) -> (usize, u32) {
    (f.len(), f.literal_count())
}

/// Expands every cube of `f` to a prime implicant against the OFF-set,
/// then removes single-cube containment.
pub fn expand(f: &Cover, off: &Cover) -> Cover {
    let nvars = f.nvars();
    // Per-variable occupancy counts over the OFF-set, computed once for
    // the whole pass (they used to be recomputed for every cube).
    let mut off_counts = [0u32; Cube::MAX_VARS as usize];
    for oc in off.cubes() {
        let mut m = oc.support_mask();
        while m != 0 {
            off_counts[m.trailing_zeros() as usize] += 1;
            m &= m - 1;
        }
    }
    // Expand biggest cubes first so smaller cubes are more likely to be
    // absorbed afterwards.
    let mut order: Vec<Cube> = f.cubes().to_vec();
    order.sort_by_key(|c| c.literal_count());
    // Cube expansions are independent; fan out across cores when the
    // cover is large enough to amortize thread startup. Results land in
    // input order either way (milo-par's determinism policy).
    let expanded: Vec<Cube> = if order.len() >= 64 && off.len() >= 32 {
        milo_par::par_map(&order, |&cube| expand_cube(cube, off, nvars, &off_counts))
    } else {
        order
            .iter()
            .map(|&cube| expand_cube(cube, off, nvars, &off_counts))
            .collect()
    };
    let mut out = Cover::zero(nvars);
    for cube in expanded {
        out.push(cube);
    }
    out.single_cube_containment();
    out
}

/// Greedily raises (removes) literals of `cube` while it stays disjoint from
/// the OFF-set.
fn expand_cube(cube: Cube, off: &Cover, nvars: u8, off_counts: &[u32]) -> Cube {
    let mut c = cube;
    // Heuristic order: try to drop literals of variables that block the
    // fewest OFF cubes (approximated by occurrence count in OFF).
    let mut vars: Vec<u8> = (0..nvars).filter(|&v| c.literal(v).is_some()).collect();
    vars.sort_by_key(|&v| off_counts[v as usize]);
    for v in vars {
        let candidate = c.without(v);
        if disjoint(&candidate, off) {
            c = candidate;
        }
    }
    c
}

/// True when `cube ∩ off == ∅`.
fn disjoint(cube: &Cube, off: &Cover) -> bool {
    off.cubes().iter().all(|oc| cube.intersect(oc).is_empty())
}

/// Removes redundant cubes: a cube is redundant when the rest of the cover
/// plus the DC-set covers it.
pub fn irredundant(f: &Cover, dc: &Cover) -> Cover {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Try to remove cubes with many literals first (cheap wins last).
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));
    let mut removed = vec![false; cubes.len()];
    if nvars <= 6 {
        // Dense path: the whole space fits one 64-bit word, so "rest
        // covers cube i" is a bitmask containment test over precomputed
        // per-cube row masks — no intermediate covers are built.
        let masks: Vec<u64> = cubes
            .iter()
            .map(|c| Cover::cube_row_mask(c, nvars))
            .collect();
        let dc_mask = dc.row_mask();
        for &i in &order {
            let mut rest = dc_mask;
            for (j, m) in masks.iter().enumerate() {
                if j != i && !removed[j] {
                    rest |= m;
                }
            }
            if masks[i] & !rest == 0 {
                removed[i] = true;
            }
        }
    } else {
        for &i in &order {
            let rest: Vec<Cube> = cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i && !removed[j])
                .map(|(_, c)| *c)
                .chain(dc.cubes().iter().copied())
                .collect();
            let rest_cover = Cover::from_cubes(nvars, rest);
            if rest_cover.covers_cube(&cubes[i]) {
                removed[i] = true;
            }
        }
    }
    cubes = cubes
        .into_iter()
        .zip(removed)
        .filter(|(_, r)| !r)
        .map(|(c, _)| c)
        .collect();
    Cover::from_cubes(nvars, cubes)
}

/// Reduces each cube to the smallest cube still covering its unique part of
/// the ON-set, enabling different expansions on the next pass.
pub fn reduce(f: &Cover, dc: &Cover) -> Cover {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Reduce in order of decreasing size.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].literal_count());
    if nvars <= 6 {
        // Dense path: the residue (part of cube i the rest does not
        // cover) is a row bitmask, and its enclosing supercube falls out
        // of per-variable mask tests — no complement recursion.
        reduce_dense(&mut cubes, &order, dc, nvars);
        return Cover::from_cubes(nvars, cubes);
    }
    for &i in &order {
        let c = cubes[i];
        let rest: Vec<Cube> = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, d)| *d)
            .chain(dc.cubes().iter().copied())
            .collect();
        let rest_cover = Cover::from_cubes(nvars, rest);
        // Part of c not covered by the rest: (rest cofactored by c)'.
        let residue = rest_cover.cofactor_cube(&c).complement();
        if residue.is_empty() {
            continue; // fully covered; irredundant should have caught it
        }
        // Smallest cube containing the residue, re-expressed inside c.
        let mut sc = residue.cubes()[0];
        for r in residue.cubes().iter().skip(1) {
            sc = sc.supercube(r);
        }
        cubes[i] = c.intersect(&sc);
    }
    Cover::from_cubes(nvars, cubes)
}

/// Dense (`nvars <= 6`) core of [`reduce`]: per-cube residue masks and
/// supercube-by-bitmask.
fn reduce_dense(cubes: &mut [Cube], order: &[usize], dc: &Cover, nvars: u8) {
    // Rows (0..64) where variable v is 1.
    const VAR_ROWS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    // Row mask of cube `d` cofactored by `c` (None if they conflict).
    let cof_mask = |d: &Cube, c: &Cube| -> u64 {
        if (d.pos() & c.neg()) | (d.neg() & c.pos()) != 0 {
            return 0;
        }
        let cof = Cube::from_masks(d.pos() & !c.pos(), d.neg() & !c.neg());
        Cover::cube_row_mask(&cof, nvars)
    };
    let full = Cover::full_row_mask(nvars);
    for &i in order {
        let c = cubes[i];
        // (rest ∪ dc) cofactored by c, as a row mask. The residue —
        // mirroring the cofactor-complement of the sparse path — ranges
        // over the whole space; the final intersection with c restricts
        // it.
        let mut rest_cof = 0u64;
        for (j, d) in cubes.iter().enumerate() {
            if j != i {
                rest_cof |= cof_mask(d, &c);
            }
        }
        for d in dc.cubes() {
            rest_cof |= cof_mask(d, &c);
        }
        let residue = full & !rest_cof;
        if residue == 0 {
            continue; // fully covered; irredundant should have caught it
        }
        // Smallest cube containing the residue rows.
        let mut sc = Cube::top();
        for (v, rows) in VAR_ROWS.iter().enumerate().take(nvars as usize) {
            if residue & !rows == 0 {
                sc = sc.with_pos(v as u8);
            } else if residue & rows == 0 {
                sc = sc.with_neg(v as u8);
            }
        }
        cubes[i] = c.intersect(&sc);
    }
}

/// Exact check (for tests / assertions): `candidate` equals `on` modulo the
/// DC-set — it covers all of ON, and nothing in OFF.
pub fn verify(candidate: &Cover, on: &Cover, dc: Option<&Cover>) -> bool {
    let nvars = on.nvars();
    let dc = dc.cloned().unwrap_or_else(|| Cover::zero(nvars));
    // ON ⊆ candidate ∪ DC
    let cand_dc = candidate.or(&dc);
    for c in on.cubes() {
        if !cand_dc.covers_cube(c) {
            return false;
        }
    }
    // candidate ⊆ ON ∪ DC
    let on_dc = on.or(&dc);
    for c in candidate.cubes() {
        if !on_dc.covers_cube(c) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn minimize_minterms_of_or() {
        let tt = TruthTable::from_fn(3, |r| r != 0);
        let f = Cover::from_truth(&tt);
        let res = minimize(&f, None);
        assert!(verify(&res.cover, &f, None));
        assert_eq!(res.cover.len(), 3); // x0 | x1 | x2
        assert_eq!(res.cover.literal_count(), 3);
        assert_eq!(res.cover.to_truth(), tt);
    }

    #[test]
    fn minimize_with_dont_cares() {
        // ON = {3}, DC = {1, 2}: minimal result over x0,x1 is a single
        // one-literal cube (x0 or x1).
        let on = Cover::from_truth(&TruthTable::new(2, 0b1000));
        let dc = Cover::from_truth(&TruthTable::new(2, 0b0110));
        let res = minimize(&on, Some(&dc));
        assert!(verify(&res.cover, &on, Some(&dc)));
        assert_eq!(res.cover.len(), 1);
        assert_eq!(res.cover.literal_count(), 1);
    }

    #[test]
    fn minimize_xor_stays_two_cubes() {
        let tt = TruthTable::from_fn(2, |r| (r.count_ones() & 1) == 1);
        let f = Cover::from_truth(&tt);
        let res = minimize(&f, None);
        assert_eq!(res.cover.len(), 2);
        assert_eq!(res.cover.to_truth(), tt);
    }

    #[test]
    fn minimize_idempotent() {
        let tt = TruthTable::from_fn(4, |r| (r & 0b11) == 0b11 || r >> 3 == 1);
        let f = Cover::from_truth(&tt);
        let once = minimize(&f, None);
        let twice = minimize(&once.cover, None);
        assert_eq!(once.cover.to_truth(), twice.cover.to_truth());
        assert!(twice.literals_after <= once.literals_after);
    }

    #[test]
    fn expand_produces_primes() {
        let tt = TruthTable::from_fn(3, |r| r >= 4); // f = x2
        let f = Cover::from_truth(&tt);
        let off = f.complement();
        let e = expand(&f, &off);
        assert_eq!(e.len(), 1);
        assert_eq!(e.cubes()[0].literal_count(), 1);
    }

    #[test]
    fn irredundant_removes_consensus_cube() {
        // x0x1 | !x0x2 | x1x2 — the last cube is redundant.
        let f = Cover::from_cubes(
            3,
            vec![
                Cube::top().with_pos(0).with_pos(1),
                Cube::top().with_neg(0).with_pos(2),
                Cube::top().with_pos(1).with_pos(2),
            ],
        );
        let out = irredundant(&f, &Cover::zero(3));
        assert_eq!(out.len(), 2);
        assert!(out.equivalent(&f));
    }

    #[test]
    fn verify_rejects_wrong_cover() {
        let on = Cover::from_truth(&TruthTable::new(2, 0b1000));
        let wrong = Cover::one(2);
        assert!(!verify(&wrong, &on, None));
    }
}
