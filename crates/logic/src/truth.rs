//! Single-output truth tables over up to [`TruthTable::MAX_VARS`] variables.
//!
//! The paper's strategy 4 keys its transformation hash table by "the truth
//! table entry for a particular function", limited "to entries of up to five
//! variables, making each hash table key a maximum of 32 bits -- a common
//! computer word" (§4.1.2). [`TruthTable::key32`] produces exactly that key.
//!
//! We allow six variables internally (64 bits) so the minimizer and the
//! equivalence checks in the test-suite can handle slightly larger cones.

use std::fmt;

/// A complete truth table for a Boolean function of `vars` inputs.
///
/// Row `i` of the table (the function value under the input assignment whose
/// bit `k` is `(i >> k) & 1`) is stored in bit `i` of `bits`.
///
/// # Examples
///
/// ```
/// use milo_logic::TruthTable;
///
/// let and2 = TruthTable::from_fn(2, |row| row == 0b11);
/// assert!(and2.eval(0b11));
/// assert!(!and2.eval(0b01));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    vars: u8,
    bits: u64,
}

impl TruthTable {
    /// Maximum supported variable count.
    pub const MAX_VARS: u8 = 6;

    /// Creates a table from an explicit bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `vars > Self::MAX_VARS` or if `bits` has bits set beyond
    /// the `2^vars` rows of the table.
    pub fn new(vars: u8, bits: u64) -> Self {
        assert!(
            vars <= Self::MAX_VARS,
            "at most {} variables",
            Self::MAX_VARS
        );
        let mask = Self::row_mask(vars);
        assert_eq!(bits & !mask, 0, "bits beyond 2^vars rows");
        Self { vars, bits }
    }

    fn row_mask(vars: u8) -> u64 {
        if vars == 6 {
            u64::MAX
        } else {
            (1u64 << (1u32 << vars)) - 1
        }
    }

    /// Builds a table by evaluating `f` on every input row.
    pub fn from_fn(vars: u8, mut f: impl FnMut(u32) -> bool) -> Self {
        assert!(vars <= Self::MAX_VARS);
        let mut bits = 0u64;
        for row in 0..(1u32 << vars) {
            if f(row) {
                bits |= 1u64 << row;
            }
        }
        Self { vars, bits }
    }

    /// The constant-zero function.
    pub fn zero(vars: u8) -> Self {
        Self::new(vars, 0)
    }

    /// The constant-one function.
    pub fn one(vars: u8) -> Self {
        Self::new(vars, Self::row_mask(vars))
    }

    /// The projection onto variable `var`.
    pub fn var(vars: u8, var: u8) -> Self {
        assert!(var < vars);
        Self::from_fn(vars, |row| row >> var & 1 == 1)
    }

    /// Number of input variables.
    pub fn vars(&self) -> u8 {
        self.vars
    }

    /// Raw table bits (row `i` in bit `i`).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function for the given input row.
    pub fn eval(&self, row: u32) -> bool {
        debug_assert!(row < (1u32 << self.vars));
        self.bits >> row & 1 == 1
    }

    /// The 32-bit hash-table key of §4.1.2 for functions of up to 5 inputs.
    ///
    /// Returns `None` for 6-variable tables, which do not fit "a common
    /// computer word" and, per the paper, fall back to the rule base.
    pub fn key32(&self) -> Option<u32> {
        if self.vars <= 5 {
            Some(self.bits as u32)
        } else {
            None
        }
    }

    /// Complement (logical NOT).
    #[must_use]
    pub fn not(&self) -> Self {
        Self {
            vars: self.vars,
            bits: !self.bits & Self::row_mask(self.vars),
        }
    }

    /// Conjunction with another table over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        Self {
            vars: self.vars,
            bits: self.bits & other.bits,
        }
    }

    /// Disjunction with another table over the same variables.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        Self {
            vars: self.vars,
            bits: self.bits | other.bits,
        }
    }

    /// Exclusive-or with another table over the same variables.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        Self {
            vars: self.vars,
            bits: self.bits ^ other.bits,
        }
    }

    /// Positive (`phase == true`) or negative cofactor with respect to `var`.
    ///
    /// The result still ranges over the same `vars` inputs but no longer
    /// depends on `var`.
    #[must_use]
    pub fn cofactor(&self, var: u8, phase: bool) -> Self {
        assert!(var < self.vars);
        Self::from_fn(self.vars, |row| {
            let fixed = if phase {
                row | (1 << var)
            } else {
                row & !(1 << var)
            };
            self.eval(fixed)
        })
    }

    /// Whether the function actually depends on `var`.
    pub fn depends_on(&self, var: u8) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<u8> {
        (0..self.vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// `Some(value)` if the function is constant.
    pub fn as_const(&self) -> Option<bool> {
        if self.bits == 0 {
            Some(false)
        } else if self.bits == Self::row_mask(self.vars) {
            Some(true)
        } else {
            None
        }
    }

    /// Number of rows on which the function is true.
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Re-expresses the table over `new_vars >= vars` variables (the extra
    /// variables are don't-cares the function ignores).
    #[must_use]
    pub fn extend_to(&self, new_vars: u8) -> Self {
        assert!(new_vars >= self.vars && new_vars <= Self::MAX_VARS);
        let small = 1u32 << self.vars;
        Self::from_fn(new_vars, |row| self.eval(row % small))
    }

    /// Applies an input permutation: output variable `i` reads former
    /// variable `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..vars`.
    #[must_use]
    pub fn permute(&self, perm: &[u8]) -> Self {
        assert_eq!(perm.len(), self.vars as usize);
        let mut seen = vec![false; self.vars as usize];
        for &p in perm {
            assert!(
                !std::mem::replace(&mut seen[p as usize], true),
                "not a permutation"
            );
        }
        Self::from_fn(self.vars, |row| {
            let mut orig = 0u32;
            for (i, &p) in perm.iter().enumerate() {
                if row >> i & 1 == 1 {
                    orig |= 1 << p;
                }
            }
            self.eval(orig)
        })
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TruthTable({} vars, {:#0width$b})",
            self.vars,
            self.bits,
            width = (1usize << self.vars) + 2
        )
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in (0..(1u32 << self.vars)).rev() {
            write!(f, "{}", u8::from(self.eval(row)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and2_rows() {
        let t = TruthTable::from_fn(2, |r| r == 3);
        assert_eq!(t.bits(), 0b1000);
        assert_eq!(t.key32(), Some(0b1000));
    }

    #[test]
    fn constants() {
        assert_eq!(TruthTable::zero(3).as_const(), Some(false));
        assert_eq!(TruthTable::one(3).as_const(), Some(true));
        assert_eq!(TruthTable::var(3, 1).as_const(), None);
    }

    #[test]
    fn ops_match_bitwise_semantics() {
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 2);
        let f = a.and(&b.not());
        for row in 0..8 {
            let expect = (row & 1 == 1) && (row >> 2 & 1 == 0);
            assert_eq!(f.eval(row), expect, "row {row}");
        }
    }

    #[test]
    fn cofactor_and_support() {
        // f = x0 & x1 | x2
        let f = TruthTable::var(3, 0)
            .and(&TruthTable::var(3, 1))
            .or(&TruthTable::var(3, 2));
        assert_eq!(f.support(), vec![0, 1, 2]);
        let f_x2 = f.cofactor(2, true);
        assert_eq!(f_x2.as_const(), Some(true));
        let f_nx2 = f.cofactor(2, false);
        assert_eq!(f_nx2.support(), vec![0, 1]);
    }

    #[test]
    fn six_vars_has_no_key32() {
        let t = TruthTable::var(6, 5);
        assert_eq!(t.key32(), None);
    }

    #[test]
    fn extend_ignores_new_vars() {
        let t = TruthTable::var(2, 1).extend_to(4);
        assert_eq!(t.vars(), 4);
        assert!(t.eval(0b0010));
        assert!(t.eval(0b1110));
        assert!(!t.eval(0b1101));
        assert!(!t.depends_on(3));
    }

    #[test]
    fn permute_swaps_inputs() {
        // f(x0,x1) = x0 & !x1 ; swap inputs
        let f = TruthTable::var(2, 0).and(&TruthTable::var(2, 1).not());
        let g = f.permute(&[1, 0]);
        assert!(g.eval(0b10));
        assert!(!g.eval(0b01));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_vars_panics() {
        let _ = TruthTable::new(7, 0);
    }
}
