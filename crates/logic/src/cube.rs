//! Cubes: products of literals over up to 32 variables.
//!
//! A cube is the basic unit of the two-level (sum-of-products)
//! representation used by the ESPRESSO-style minimizer (§2.1.1 of the paper)
//! and the weak-division factorizer (strategies 3 and 7, §4.1.2).

use std::fmt;

/// A product term. Bit `v` of `pos` means literal `x_v` appears; bit `v` of
/// `neg` means `!x_v` appears. A variable with both bits clear is absent
/// (don't-care); both bits set makes the cube empty (contradiction).
///
/// # Examples
///
/// ```
/// use milo_logic::Cube;
///
/// let c = Cube::top().with_pos(0).with_neg(2); // x0 & !x2
/// assert!(c.eval(0b001));
/// assert!(!c.eval(0b101));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    pos: u32,
    neg: u32,
}

/// Phase of a literal inside a [`Cube`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// The variable appears uncomplemented.
    Pos,
    /// The variable appears complemented.
    Neg,
}

impl Cube {
    /// Maximum variable index a cube can mention.
    pub const MAX_VARS: u8 = 32;

    /// The universal cube (empty product, covers everything).
    pub fn top() -> Self {
        Self { pos: 0, neg: 0 }
    }

    /// Builds a cube from raw literal masks.
    pub fn from_masks(pos: u32, neg: u32) -> Self {
        Self { pos, neg }
    }

    /// Positive-literal mask.
    pub fn pos(&self) -> u32 {
        self.pos
    }

    /// Negative-literal mask.
    pub fn neg(&self) -> u32 {
        self.neg
    }

    /// Adds the positive literal `x_var`.
    #[must_use]
    pub fn with_pos(mut self, var: u8) -> Self {
        self.pos |= 1 << var;
        self
    }

    /// Adds the negative literal `!x_var`.
    #[must_use]
    pub fn with_neg(mut self, var: u8) -> Self {
        self.neg |= 1 << var;
        self
    }

    /// Adds a literal of the given phase.
    #[must_use]
    pub fn with_literal(self, var: u8, phase: Phase) -> Self {
        match phase {
            Phase::Pos => self.with_pos(var),
            Phase::Neg => self.with_neg(var),
        }
    }

    /// Removes any literal of `var` (makes the variable free).
    #[must_use]
    pub fn without(mut self, var: u8) -> Self {
        self.pos &= !(1 << var);
        self.neg &= !(1 << var);
        self
    }

    /// The phase with which `var` occurs, if it occurs.
    pub fn literal(&self, var: u8) -> Option<Phase> {
        match (self.pos >> var & 1, self.neg >> var & 1) {
            (1, 0) => Some(Phase::Pos),
            (0, 1) => Some(Phase::Neg),
            _ => None,
        }
    }

    /// Whether the cube is the empty set (some variable appears in both
    /// phases).
    pub fn is_empty(&self) -> bool {
        self.pos & self.neg != 0
    }

    /// Whether the cube is the universal cube.
    pub fn is_top(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Number of literals.
    pub fn literal_count(&self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Mask of variables mentioned (either phase).
    pub fn support_mask(&self) -> u32 {
        self.pos | self.neg
    }

    /// Evaluates the product under an assignment (bit `v` of `row` is `x_v`).
    pub fn eval(&self, row: u32) -> bool {
        (self.pos & !row) == 0 && (self.neg & row) == 0
    }

    /// Set containment: does `self` cover every minterm of `other`?
    ///
    /// True iff every literal of `self` also constrains `other`.
    pub fn contains(&self, other: &Self) -> bool {
        if other.is_empty() {
            return true;
        }
        (self.pos & !other.pos) == 0 && (self.neg & !other.neg) == 0
    }

    /// Intersection of the two products (may be empty).
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        Self {
            pos: self.pos | other.pos,
            neg: self.neg | other.neg,
        }
    }

    /// Number of variables in which the two cubes have opposite phases.
    ///
    /// Distance 0 means the cubes intersect; distance 1 admits a consensus.
    pub fn distance(&self, other: &Self) -> u32 {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones()
    }

    /// Consensus of two distance-1 cubes, if it exists.
    pub fn consensus(&self, other: &Self) -> Option<Self> {
        let conflict = (self.pos & other.neg) | (self.neg & other.pos);
        if conflict.count_ones() != 1 {
            return None;
        }
        let merged = self.intersect(other);
        Some(Self {
            pos: merged.pos & !conflict,
            neg: merged.neg & !conflict,
        })
    }

    /// Smallest cube containing both (bitwise AND of literal sets).
    #[must_use]
    pub fn supercube(&self, other: &Self) -> Self {
        Self {
            pos: self.pos & other.pos,
            neg: self.neg & other.neg,
        }
    }

    /// Cofactor with respect to a single literal: restricts the space to
    /// `var == phase` and drops the variable. Returns `None` if the cube is
    /// false in that subspace.
    pub fn cofactor(&self, var: u8, phase: bool) -> Option<Self> {
        let bit = 1u32 << var;
        let against = if phase { self.neg } else { self.pos };
        if against & bit != 0 {
            return None;
        }
        Some(Self {
            pos: self.pos & !bit,
            neg: self.neg & !bit,
        })
    }

    /// Algebraic-division quotient of `self` by the product `divisor`:
    /// `self = divisor * q` when `divisor`'s literals are a subset of
    /// `self`'s. Returns the remaining literals, or `None` if not divisible.
    pub fn algebraic_quotient(&self, divisor: &Self) -> Option<Self> {
        if (divisor.pos & !self.pos) != 0 || (divisor.neg & !self.neg) != 0 {
            return None;
        }
        Some(Self {
            pos: self.pos & !divisor.pos,
            neg: self.neg & !divisor.neg,
        })
    }

    /// Iterator over `(var, phase)` literals in ascending variable order.
    pub fn literals(&self) -> impl Iterator<Item = (u8, Phase)> + '_ {
        (0..Self::MAX_VARS).filter_map(move |v| self.literal(v).map(|p| (v, p)))
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            return write!(f, "1");
        }
        if self.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (v, phase) in self.literals() {
            if !first {
                write!(f, "&")?;
            }
            first = false;
            match phase {
                Phase::Pos => write!(f, "x{v}")?,
                Phase::Neg => write!(f, "!x{v}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let c = Cube::top().with_pos(1).with_neg(3);
        assert!(c.eval(0b0010));
        assert!(c.eval(0b0110));
        assert!(!c.eval(0b1010));
        assert!(!c.eval(0b0000));
    }

    #[test]
    fn containment() {
        let big = Cube::top().with_pos(0);
        let small = Cube::top().with_pos(0).with_neg(1);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn empty_cube_contained_by_all() {
        let empty = Cube::top().with_pos(2).with_neg(2);
        assert!(empty.is_empty());
        assert!(Cube::top().with_pos(5).contains(&empty));
    }

    #[test]
    fn distance_and_consensus() {
        let a = Cube::top().with_pos(0).with_pos(1); // x0 x1
        let b = Cube::top().with_neg(0).with_pos(2); // !x0 x2
        assert_eq!(a.distance(&b), 1);
        let c = a.consensus(&b).expect("consensus exists");
        assert_eq!(c, Cube::top().with_pos(1).with_pos(2));
        // distance 2 -> no consensus
        let d = Cube::top().with_neg(1).with_neg(0);
        assert_eq!(a.distance(&d), 2);
        assert!(a.consensus(&d).is_none());
    }

    #[test]
    fn supercube_drops_conflicts() {
        let a = Cube::top().with_pos(0).with_pos(1);
        let b = Cube::top().with_neg(0).with_pos(1);
        assert_eq!(a.supercube(&b), Cube::top().with_pos(1));
    }

    #[test]
    fn cofactor_literal() {
        let c = Cube::top().with_pos(0).with_pos(1);
        assert_eq!(c.cofactor(0, true), Some(Cube::top().with_pos(1)));
        assert_eq!(c.cofactor(0, false), None);
        assert_eq!(c.cofactor(2, false), Some(c));
    }

    #[test]
    fn algebraic_quotient() {
        let c = Cube::top().with_pos(0).with_pos(1).with_neg(2);
        let d = Cube::top().with_pos(1);
        assert_eq!(
            c.algebraic_quotient(&d),
            Some(Cube::top().with_pos(0).with_neg(2))
        );
        let e = Cube::top().with_neg(1);
        assert_eq!(c.algebraic_quotient(&e), None);
    }
}
