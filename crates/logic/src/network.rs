//! A multi-level Boolean network: the intermediate form for strategy 7
//! ("minimize into a two level circuit … then expand through weak division
//! into multiple levels", §4.1.3).
//!
//! Nodes hold sum-of-products covers over their fanins; primary inputs are
//! leaves. The network supports evaluation, node collapsing (full collapse
//! gives the two-level form), and re-synthesis by kernel extraction.

use crate::divide::KernelCache;
use crate::espresso;
use crate::{Cover, Cube, Phase};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a network node (primary input or internal node).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// What a node computes.
#[derive(Clone, Debug)]
enum NodeKind {
    /// Primary input with a display name.
    Input(String),
    /// Internal node: a cover over the node's `fanins` (cover variable `i`
    /// is `fanins[i]`).
    Logic { cover: Cover, fanins: Vec<NodeId> },
}

/// A Boolean network.
///
/// # Examples
///
/// ```
/// use milo_logic::{Network, Cover, Cube};
///
/// let mut net = Network::new();
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let f = net.add_node(
///     Cover::from_cube(2, Cube::top().with_pos(0).with_pos(1)),
///     vec![a, b],
/// );
/// net.add_output("f", f);
/// assert!(net.eval(&[("a", true), ("b", true)].into_iter().collect())["f"]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<NodeKind>,
    outputs: Vec<(String, NodeId)>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(NodeKind::Input(name.into()));
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Adds an internal node computing `cover` over `fanins`.
    ///
    /// # Panics
    ///
    /// Panics if the cover mentions a variable `>= fanins.len()` or a fanin
    /// id is out of range.
    pub fn add_node(&mut self, cover: Cover, fanins: Vec<NodeId>) -> NodeId {
        for c in cover.cubes() {
            assert!(
                (c.support_mask() >> fanins.len()) == 0,
                "cover mentions variables beyond the fanin list"
            );
        }
        for f in &fanins {
            assert!((f.0 as usize) < self.nodes.len(), "fanin out of range");
        }
        self.nodes.push(NodeKind::Logic { cover, fanins });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Declares `node` as a primary output called `name`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Names of the primary inputs in id order.
    pub fn input_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                NodeKind::Input(s) => Some(s.as_str()),
                NodeKind::Logic { .. } => None,
            })
            .collect()
    }

    /// Number of internal (logic) nodes.
    pub fn logic_node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Logic { .. }))
            .count()
    }

    /// Total factored/SOP literal count over all logic nodes.
    pub fn literal_count(&self) -> u32 {
        self.nodes
            .iter()
            .map(|n| match n {
                NodeKind::Input(_) => 0,
                NodeKind::Logic { cover, .. } => cover.literal_count(),
            })
            .sum()
    }

    /// Evaluates all outputs under named input values.
    ///
    /// # Panics
    ///
    /// Panics if an input name is missing from `values`.
    pub fn eval(&self, values: &HashMap<&str, bool>) -> HashMap<String, bool> {
        let mut memo: Vec<Option<bool>> = vec![None; self.nodes.len()];
        let mut out = HashMap::new();
        for (name, id) in &self.outputs {
            out.insert(name.clone(), self.eval_node(*id, values, &mut memo));
        }
        out
    }

    fn eval_node(
        &self,
        id: NodeId,
        values: &HashMap<&str, bool>,
        memo: &mut Vec<Option<bool>>,
    ) -> bool {
        if let Some(v) = memo[id.0 as usize] {
            return v;
        }
        let v = match &self.nodes[id.0 as usize] {
            NodeKind::Input(name) => *values
                .get(name.as_str())
                .unwrap_or_else(|| panic!("missing value for input {name}")),
            NodeKind::Logic { cover, fanins } => {
                let mut row = 0u32;
                for (i, f) in fanins.iter().enumerate() {
                    if self.eval_node(*f, values, memo) {
                        row |= 1 << i;
                    }
                }
                cover.eval(row)
            }
        };
        memo[id.0 as usize] = Some(v);
        v
    }

    /// Collapses `node` so that it is expressed directly over primary
    /// inputs. Only usable when the transitive input support is at most
    /// [`Cube::MAX_VARS`] inputs.
    ///
    /// Returns the collapsed cover together with the primary-input ids it
    /// ranges over (cover variable `i` = returned id `i`).
    pub fn collapse_to_inputs(&self, node: NodeId) -> (Cover, Vec<NodeId>) {
        let support = self.input_support(node);
        assert!(
            support.len() <= Cube::MAX_VARS as usize,
            "support of {} inputs exceeds the cube width",
            support.len()
        );
        let index: HashMap<NodeId, u8> = support
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i as u8))
            .collect();
        let cover = self.collapse_rec(node, &index, support.len() as u8, &mut HashMap::new());
        (cover, support)
    }

    fn collapse_rec(
        &self,
        node: NodeId,
        index: &HashMap<NodeId, u8>,
        nvars: u8,
        memo: &mut HashMap<NodeId, Cover>,
    ) -> Cover {
        if let Some(c) = memo.get(&node) {
            return c.clone();
        }
        let result = match &self.nodes[node.0 as usize] {
            NodeKind::Input(_) => Cover::literal(nvars, index[&node], Phase::Pos),
            NodeKind::Logic { cover, fanins } => {
                let fanin_covers: Vec<(Cover, Cover)> = fanins
                    .iter()
                    .map(|f| {
                        let c = self.collapse_rec(*f, index, nvars, memo);
                        let n = c.complement();
                        (c, n)
                    })
                    .collect();
                let mut acc = Cover::zero(nvars);
                for cube in cover.cubes() {
                    let mut term = Cover::one(nvars);
                    for (v, phase) in cube.literals() {
                        let (pos, neg) = &fanin_covers[v as usize];
                        term = term.and(if phase == Phase::Pos { pos } else { neg });
                        if term.is_empty() {
                            break;
                        }
                    }
                    acc = acc.or(&term);
                }
                acc.single_cube_containment();
                acc
            }
        };
        memo.insert(node, result.clone());
        result
    }

    /// Transitive primary-input support of `node`, in ascending id order.
    pub fn input_support(&self, node: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![node];
        let mut support = Vec::new();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.0 as usize], true) {
                continue;
            }
            match &self.nodes[n.0 as usize] {
                NodeKind::Input(_) => support.push(n),
                NodeKind::Logic { fanins, .. } => stack.extend(fanins.iter().copied()),
            }
        }
        support.sort();
        support
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            match n {
                NodeKind::Input(name) => writeln!(f, "n{i}: input {name}")?,
                NodeKind::Logic { cover, fanins } => writeln!(f, "n{i}: {cover} over {fanins:?}")?,
            }
        }
        for (name, id) in &self.outputs {
            writeln!(f, "output {name} = n{}", id.0)?;
        }
        Ok(())
    }
}

/// Strategy-7 style re-synthesis of a single-output function: collapse to
/// two-level, minimize with [`espresso`], then rebuild a multi-level
/// network by repeated kernel extraction (weak division).
///
/// Returns a fresh network whose inputs are named after `input_names`.
pub fn resynthesize(cover: &Cover, input_names: &[&str]) -> Network {
    resynthesize_with_cache(cover, input_names, &mut KernelCache::new())
}

/// [`resynthesize`] with an explicit kernel memo cache, so repeated
/// re-synthesis over a network (or across strategy applications) reuses
/// kernel extractions of structurally identical sub-covers.
pub fn resynthesize_with_cache(
    cover: &Cover,
    input_names: &[&str],
    cache: &mut KernelCache,
) -> Network {
    let min = espresso::minimize(cover, None).cover;
    let mut net = Network::new();
    let inputs: Vec<NodeId> = input_names.iter().map(|n| net.add_input(*n)).collect();
    let root = build_factored(&mut net, &min, &inputs, cache);
    net.add_output("f", root);
    net
}

/// Multi-output re-synthesis: minimizes every output cover in parallel
/// (deterministically — results land in input order), then factors each
/// minimized cover through one shared kernel cache.
///
/// Returns one network per `(cover, output name)` pair.
pub fn resynthesize_outputs(outputs: &[(Cover, String)], input_names: &[&str]) -> Vec<Network> {
    let minimized =
        espresso::minimize_many(&outputs.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>());
    let mut cache = KernelCache::new();
    minimized
        .into_iter()
        .zip(outputs)
        .map(|(min, (_, name))| {
            let mut net = Network::new();
            let inputs: Vec<NodeId> = input_names.iter().map(|n| net.add_input(*n)).collect();
            let root = build_factored(&mut net, &min.cover, &inputs, &mut cache);
            net.add_output(name.clone(), root);
            net
        })
        .collect()
}

/// Recursively extracts the best kernel of `f`, materializing divisor and
/// quotient as separate nodes.
fn build_factored(
    net: &mut Network,
    f: &Cover,
    vars: &[NodeId],
    cache: &mut KernelCache,
) -> NodeId {
    if let Some(k) = cache.best_kernel(f) {
        let div = crate::divide::divide(f, &k.kernel);
        if !div.quotient.is_empty() && k.kernel.len() >= 2 && div.quotient.literal_count() >= 1 {
            let d_node = build_factored(net, &k.kernel, vars, cache);
            let q_node = build_factored(net, &div.quotient, vars, cache);
            // product node: d & q, plus the remainder as extra cubes.
            let mut fanins = vec![d_node, q_node];
            let mut cubes = vec![Cube::top().with_pos(0).with_pos(1)];
            if !div.remainder.is_empty() {
                let r_node = build_factored(net, &div.remainder, vars, cache);
                fanins.push(r_node);
                cubes.push(Cube::top().with_pos(2));
            }
            return net.add_node(Cover::from_cubes(fanins.len() as u8, cubes), fanins);
        }
    }
    // Base case: materialize the SOP directly over the primary inputs that
    // actually appear.
    let mut used: Vec<u8> = Vec::new();
    for c in f.cubes() {
        for (v, _) in c.literals() {
            if !used.contains(&v) {
                used.push(v);
            }
        }
    }
    used.sort_unstable();
    let remap: HashMap<u8, u8> = used
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u8))
        .collect();
    let cubes: Vec<Cube> = f
        .cubes()
        .iter()
        .map(|c| {
            let mut nc = Cube::top();
            for (v, p) in c.literals() {
                nc = nc.with_literal(remap[&v], p);
            }
            nc
        })
        .collect();
    let fanins: Vec<NodeId> = used.iter().map(|v| vars[*v as usize]).collect();
    let width = used.len().max(1) as u8;
    net.add_node(Cover::from_cubes(width, cubes), fanins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(pos: &[u8]) -> Cube {
        let mut c = Cube::top();
        for &v in pos {
            c = c.with_pos(v);
        }
        c
    }

    #[test]
    fn eval_two_level() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        // g = a & b ; f = g | c
        let g = net.add_node(Cover::from_cube(2, cube(&[0, 1])), vec![a, b]);
        let f = net.add_node(
            Cover::from_cubes(2, vec![cube(&[0]), cube(&[1])]),
            vec![g, c],
        );
        net.add_output("f", f);
        let mut vals = HashMap::new();
        for row in 0..8u32 {
            vals.insert("a", row & 1 == 1);
            vals.insert("b", row >> 1 & 1 == 1);
            vals.insert("c", row >> 2 & 1 == 1);
            let expect = (row & 0b11 == 0b11) || row >> 2 == 1;
            assert_eq!(net.eval(&vals)["f"], expect, "row {row}");
        }
    }

    #[test]
    fn collapse_matches_eval() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g = net.add_node(
            Cover::from_cubes(2, vec![cube(&[0]), cube(&[1])]),
            vec![a, b],
        );
        // f = g ^ c expressed as SOP over (g, c)
        let f = net.add_node(
            Cover::from_cubes(
                2,
                vec![
                    Cube::top().with_pos(0).with_neg(1),
                    Cube::top().with_neg(0).with_pos(1),
                ],
            ),
            vec![g, c],
        );
        net.add_output("f", f);
        let (cover, support) = net.collapse_to_inputs(f);
        assert_eq!(support, vec![a, b, c]);
        let mut vals = HashMap::new();
        for row in 0..8u32 {
            vals.insert("a", row & 1 == 1);
            vals.insert("b", row >> 1 & 1 == 1);
            vals.insert("c", row >> 2 & 1 == 1);
            assert_eq!(cover.eval(row), net.eval(&vals)["f"], "row {row}");
        }
    }

    #[test]
    fn resynthesize_preserves_function_and_shrinks() {
        // Messy minterm cover of (a|b)&(c|d).
        let target = |row: u32| (row & 0b11 != 0) && (row >> 2 & 0b11 != 0);
        let tt = crate::TruthTable::from_fn(4, target);
        let flat = Cover::from_truth(&tt);
        let net = resynthesize(&flat, &["a", "b", "c", "d"]);
        let mut vals = HashMap::new();
        for row in 0..16u32 {
            vals.insert("a", row & 1 == 1);
            vals.insert("b", row >> 1 & 1 == 1);
            vals.insert("c", row >> 2 & 1 == 1);
            vals.insert("d", row >> 3 & 1 == 1);
            assert_eq!(net.eval(&vals)["f"], target(row), "row {row}");
        }
        assert!(net.literal_count() <= flat.literal_count());
    }

    #[test]
    fn input_support_is_transitive() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g = net.add_node(Cover::from_cube(2, cube(&[0, 1])), vec![a, b]);
        let f = net.add_node(Cover::from_cube(2, cube(&[0, 1])), vec![g, c]);
        assert_eq!(net.input_support(f), vec![a, b, c]);
        assert_eq!(net.input_support(g), vec![a, b]);
    }
}
