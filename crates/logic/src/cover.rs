//! Sum-of-products covers and the unate-recursive tautology / complement
//! operations that the ESPRESSO-style minimizer is built on.

use crate::{Cube, Phase, TruthTable};
use std::fmt;

/// A two-level sum-of-products form over `nvars` variables.
///
/// # Examples
///
/// ```
/// use milo_logic::{Cover, Cube};
///
/// // f = x0 & x1  |  !x2
/// let f = Cover::from_cubes(3, vec![
///     Cube::top().with_pos(0).with_pos(1),
///     Cube::top().with_neg(2),
/// ]);
/// assert!(f.eval(0b011));
/// assert!(!f.eval(0b100));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    nvars: u8,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty (constant-false) cover.
    pub fn zero(nvars: u8) -> Self {
        assert!(nvars <= Cube::MAX_VARS);
        Self {
            nvars,
            cubes: Vec::new(),
        }
    }

    /// The constant-true cover (single universal cube).
    pub fn one(nvars: u8) -> Self {
        Self {
            nvars,
            cubes: vec![Cube::top()],
        }
    }

    /// Builds a cover from cubes, dropping empty ones.
    pub fn from_cubes(nvars: u8, cubes: Vec<Cube>) -> Self {
        assert!(nvars <= Cube::MAX_VARS);
        let cubes = cubes.into_iter().filter(|c| !c.is_empty()).collect();
        Self { nvars, cubes }
    }

    /// Single-cube cover.
    pub fn from_cube(nvars: u8, cube: Cube) -> Self {
        Self::from_cubes(nvars, vec![cube])
    }

    /// Cover of a single literal.
    pub fn literal(nvars: u8, var: u8, phase: Phase) -> Self {
        Self::from_cube(nvars, Cube::top().with_literal(var, phase))
    }

    /// Exact cover of a truth table (one cube per minterm, unmerged).
    ///
    /// # Panics
    ///
    /// Panics if `tt.vars() > Cube::MAX_VARS` (cannot happen: truth tables
    /// hold at most six variables).
    pub fn from_truth(tt: &TruthTable) -> Self {
        let n = tt.vars();
        let mut cubes = Vec::new();
        for row in 0..(1u32 << n) {
            if tt.eval(row) {
                let mut c = Cube::top();
                for v in 0..n {
                    c = if row >> v & 1 == 1 {
                        c.with_pos(v)
                    } else {
                        c.with_neg(v)
                    };
                }
                cubes.push(c);
            }
        }
        Self { nvars: n, cubes }
    }

    /// Converts back to a truth table (only for `nvars <= 6`).
    pub fn to_truth(&self) -> TruthTable {
        assert!(
            self.nvars <= TruthTable::MAX_VARS,
            "cover too wide for a truth table"
        );
        TruthTable::from_fn(self.nvars, |row| self.eval(row))
    }

    /// Number of variables the cover ranges over.
    pub fn nvars(&self) -> u8 {
        self.nvars
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals (the cost function used throughout the
    /// optimizer).
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Adds a cube (ignored if empty).
    pub fn push(&mut self, cube: Cube) {
        if !cube.is_empty() {
            self.cubes.push(cube);
        }
    }

    /// Evaluates the disjunction under an assignment.
    pub fn eval(&self, row: u32) -> bool {
        self.cubes.iter().any(|c| c.eval(row))
    }

    /// Bitmask of all rows of an `nvars`-variable space (`nvars <= 6`).
    pub(crate) fn full_row_mask(nvars: u8) -> u64 {
        debug_assert!(nvars <= 6);
        if nvars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1u32 << nvars)) - 1
        }
    }

    /// Minterm set of one cube as a 64-row bitmask (`nvars <= 6` only).
    /// Bit `r` is set iff the cube covers row `r`.
    pub(crate) fn cube_row_mask(c: &Cube, nvars: u8) -> u64 {
        // Rows (0..64) where variable v is 1, for v in 0..6.
        const VAR_ROWS: [u64; 6] = [
            0xAAAA_AAAA_AAAA_AAAA,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
            0xFFFF_FFFF_0000_0000,
        ];
        let mut m = Self::full_row_mask(nvars);
        let (mut p, mut n) = (c.pos(), c.neg());
        while p != 0 {
            let v = p.trailing_zeros() as usize;
            // A positive literal beyond the variable range can never be
            // satisfied by an in-range row.
            m &= if v < 6 { VAR_ROWS[v] } else { 0 };
            p &= p - 1;
        }
        while n != 0 {
            let v = n.trailing_zeros() as usize;
            if v < 6 {
                m &= !VAR_ROWS[v];
            }
            n &= n - 1;
        }
        m
    }

    /// Minterm set of the whole cover as a 64-row bitmask
    /// (`nvars <= 6` only).
    pub(crate) fn row_mask(&self) -> u64 {
        debug_assert!(self.nvars <= 6);
        let mut acc = 0u64;
        for c in &self.cubes {
            acc |= Self::cube_row_mask(c, self.nvars);
        }
        acc
    }

    /// Cofactor of the whole cover with respect to one literal.
    #[must_use]
    pub fn cofactor(&self, var: u8, phase: bool) -> Self {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor(var, phase))
            .collect();
        Self {
            nvars: self.nvars,
            cubes,
        }
    }

    /// Cofactor with respect to a cube (Shannon restriction to the subspace
    /// where `cube` holds). Single pass: a cube survives unless it
    /// mentions some variable of `cube` in the opposite phase, and loses
    /// `cube`'s variables.
    #[must_use]
    pub fn cofactor_cube(&self, cube: &Cube) -> Self {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| {
                if (c.pos() & cube.neg()) | (c.neg() & cube.pos()) != 0 {
                    None
                } else {
                    Some(Cube::from_masks(
                        c.pos() & !cube.pos(),
                        c.neg() & !cube.neg(),
                    ))
                }
            })
            .collect();
        Self {
            nvars: self.nvars,
            cubes,
        }
    }

    /// Removes cubes covered by another single cube of the cover.
    ///
    /// Exact duplicates are dropped through a hash set (keeping the first
    /// occurrence), and the remaining containment checks are pruned by
    /// literal count: a cube can only be contained by a cube with strictly
    /// fewer literals, so candidates are probed in ascending-count order
    /// and the scan stops at the current count. The surviving cubes keep
    /// their original relative order.
    pub fn single_cube_containment(&mut self) {
        if self.cubes.len() < 2 {
            return;
        }
        let cubes = std::mem::take(&mut self.cubes);
        // Pass 1: hashed dedup, first occurrence wins.
        let mut seen: std::collections::HashSet<Cube> =
            std::collections::HashSet::with_capacity(cubes.len());
        let mut unique: Vec<Cube> = Vec::with_capacity(cubes.len());
        for c in cubes {
            if seen.insert(c) {
                unique.push(c);
            }
        }
        // Pass 2: strict containment against kept cubes with fewer
        // literals (containment is transitive, so dropped cubes never
        // need to serve as containers).
        let mut by_count: Vec<u32> = (0..unique.len() as u32).collect();
        by_count.sort_by_key(|&i| unique[i as usize].literal_count());
        let mut dropped = vec![false; unique.len()];
        let mut kept_asc: Vec<u32> = Vec::with_capacity(unique.len());
        for &i in &by_count {
            let c = unique[i as usize];
            let count = c.literal_count();
            let mut contained = false;
            for &j in &kept_asc {
                let d = unique[j as usize];
                if d.literal_count() >= count {
                    break; // equal-count distinct cubes cannot contain c
                }
                if d.contains(&c) {
                    contained = true;
                    break;
                }
            }
            if contained {
                dropped[i as usize] = true;
            } else {
                kept_asc.push(i);
            }
        }
        self.cubes = unique
            .into_iter()
            .zip(dropped)
            .filter(|(_, d)| !d)
            .map(|(c, _)| c)
            .collect();
    }

    /// Picks the most-binate variable (appears in both phases in the most
    /// cubes), for Shannon branching. Returns `None` if the cover is unate.
    pub fn binate_select(&self) -> Option<u8> {
        let mut best: Option<(u8, u32)> = None;
        for v in 0..self.nvars {
            let bit = 1u32 << v;
            let p = self.cubes.iter().filter(|c| c.pos() & bit != 0).count() as u32;
            let n = self.cubes.iter().filter(|c| c.neg() & bit != 0).count() as u32;
            if p > 0 && n > 0 {
                let score = p + n;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((v, score));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Any variable appearing in any cube (used to branch when unate but not
    /// trivially decidable). Returns `None` if all cubes are universal/empty.
    fn any_active_var(&self) -> Option<u8> {
        for c in &self.cubes {
            let m = c.support_mask();
            if m != 0 {
                return Some(m.trailing_zeros() as u8);
            }
        }
        None
    }

    /// Tautology check: is the cover identically true? Unate-recursive
    /// paradigm as in ESPRESSO.
    pub fn is_tautology(&self) -> bool {
        // Dense fast path: for <= 6 variables the minterm set fits one
        // 64-bit word, so the check is a linear OR over cube row masks.
        if self.nvars <= 6 {
            return self.row_mask() == Self::full_row_mask(self.nvars);
        }
        // Fast exits.
        if self.cubes.iter().any(Cube::is_top) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Unate reduction: in a unate cover, tautology iff it contains the
        // universal cube (already checked above) — but only when every
        // variable is unate.
        match self.binate_select() {
            Some(v) => {
                self.cofactor(v, true).is_tautology() && self.cofactor(v, false).is_tautology()
            }
            None => {
                // Unate cover without a universal cube: can still be a
                // tautology only if splitting exhausts variables; for a
                // unate cover the theorem says tautology iff some cube is
                // universal, except the degenerate multi-cube cases handled
                // by recursion on an active variable.
                match self.any_active_var() {
                    None => false, // only empty cubes remain
                    Some(_) => false,
                }
            }
        }
    }

    /// Complement of the cover, by Shannon recursion with unate shortcuts.
    #[must_use]
    pub fn complement(&self) -> Self {
        self.complement_inner()
    }

    fn complement_inner(&self) -> Self {
        // Terminal cases.
        if self.cubes.is_empty() {
            return Self::one(self.nvars);
        }
        if self.cubes.iter().any(Cube::is_top) {
            return Self::zero(self.nvars);
        }
        if self.cubes.len() == 1 {
            return self.complement_single_cube();
        }
        let var = self.binate_select().or_else(|| self.any_active_var());
        match var {
            None => Self::zero(self.nvars),
            Some(v) => {
                let c1 = self.cofactor(v, true).complement_inner();
                let c0 = self.cofactor(v, false).complement_inner();
                let mut cubes = Vec::with_capacity(c1.len() + c0.len());
                for c in c1.cubes {
                    cubes.push(c.with_pos(v));
                }
                for c in c0.cubes {
                    cubes.push(c.with_neg(v));
                }
                let mut out = Self {
                    nvars: self.nvars,
                    cubes,
                };
                out.single_cube_containment();
                out
            }
        }
    }

    /// De Morgan complement of a single cube.
    fn complement_single_cube(&self) -> Self {
        let c = self.cubes[0];
        let mut cubes = Vec::new();
        for (v, phase) in c.literals() {
            let flipped = match phase {
                Phase::Pos => Cube::top().with_neg(v),
                Phase::Neg => Cube::top().with_pos(v),
            };
            cubes.push(flipped);
        }
        Self {
            nvars: self.nvars,
            cubes,
        }
    }

    /// Whether `cube` is covered by this cover (cofactor tautology test;
    /// dense minterm containment when the space fits a 64-bit word).
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        if self.nvars <= 6 {
            return Self::cube_row_mask(cube, self.nvars) & !self.row_mask() == 0;
        }
        self.cofactor_cube(cube).is_tautology()
    }

    /// Disjunction of two covers over the same variables.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.nvars, other.nvars);
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Self {
            nvars: self.nvars,
            cubes,
        }
    }

    /// Conjunction of two covers (cartesian product of cubes).
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.nvars, other.nvars);
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                let c = a.intersect(b);
                if !c.is_empty() {
                    cubes.push(c);
                }
            }
        }
        let mut out = Self {
            nvars: self.nvars,
            cubes,
        };
        out.single_cube_containment();
        out
    }

    /// Semantic equivalence test against another cover (via tautology of
    /// mutual implication — works for any `nvars`).
    pub fn equivalent(&self, other: &Self) -> bool {
        assert_eq!(self.nvars, other.nvars);
        // self => other  iff  !other & self == 0
        let not_other = other.complement();
        if !self.and(&not_other).is_empty_function() {
            return false;
        }
        let not_self = self.complement();
        other.and(&not_self).is_empty_function()
    }

    /// Whether the cover denotes the constant-false function (no satisfying
    /// assignment).
    pub fn is_empty_function(&self) -> bool {
        self.cubes.iter().all(Cube::is_empty)
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({} vars: ", self.nvars)?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover over [`Cube::MAX_VARS`] variables.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Self::from_cubes(Cube::MAX_VARS, iter.into_iter().collect())
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::from_cubes(
            2,
            vec![
                Cube::top().with_pos(0).with_neg(1),
                Cube::top().with_neg(0).with_pos(1),
            ],
        )
    }

    #[test]
    fn truth_roundtrip() {
        let tt = TruthTable::from_fn(3, |r| (r.count_ones() & 1) == 1);
        let cover = Cover::from_truth(&tt);
        assert_eq!(cover.to_truth(), tt);
    }

    #[test]
    fn tautology_cases() {
        assert!(Cover::one(3).is_tautology());
        assert!(!Cover::zero(3).is_tautology());
        assert!(!xor2().is_tautology());
        // x0 | !x0 is a tautology
        let t = Cover::from_cubes(1, vec![Cube::top().with_pos(0), Cube::top().with_neg(0)]);
        assert!(t.is_tautology());
    }

    #[test]
    fn complement_is_involutive_on_truth() {
        let f = xor2();
        let g = f.complement();
        let expect = f.to_truth().not();
        assert_eq!(g.to_truth(), expect);
        assert_eq!(g.complement().to_truth(), f.to_truth());
    }

    #[test]
    fn complement_wide_cover() {
        // 8-variable cover: x0x1 | x2x3 | ... | x6x7 — beyond truth tables.
        let mut cubes = Vec::new();
        for i in (0..8).step_by(2) {
            cubes.push(Cube::top().with_pos(i).with_pos(i + 1));
        }
        let f = Cover::from_cubes(8, cubes);
        let g = f.complement();
        for row in [0u32, 0b11, 0b1100_0000, 0b0101_0101, 0xff] {
            assert_eq!(g.eval(row), !f.eval(row), "row {row:b}");
        }
    }

    #[test]
    fn covers_cube_test() {
        let f = xor2();
        assert!(f.covers_cube(&Cube::top().with_pos(0).with_neg(1)));
        assert!(!f.covers_cube(&Cube::top().with_pos(0)));
    }

    #[test]
    fn and_or_eval() {
        let a = Cover::literal(3, 0, Phase::Pos);
        let b = Cover::literal(3, 1, Phase::Neg);
        let f = a.and(&b).or(&Cover::literal(3, 2, Phase::Pos));
        for row in 0..8 {
            let expect = ((row & 1) == 1 && (row >> 1 & 1) == 0) || (row >> 2 & 1) == 1;
            assert_eq!(f.eval(row), expect);
        }
    }

    #[test]
    fn containment_removal() {
        let mut f = Cover::from_cubes(
            2,
            vec![Cube::top().with_pos(0), Cube::top().with_pos(0).with_pos(1)],
        );
        f.single_cube_containment();
        assert_eq!(f.len(), 1);
        assert_eq!(f.cubes()[0], Cube::top().with_pos(0));
    }

    #[test]
    fn equivalence() {
        let f = xor2();
        let g = Cover::from_truth(&f.to_truth());
        assert!(f.equivalent(&g));
        assert!(!f.equivalent(&Cover::one(2)));
    }

    #[test]
    fn duplicate_cubes_containment_keeps_one() {
        let mut f = Cover::from_cubes(2, vec![Cube::top().with_pos(0), Cube::top().with_pos(0)]);
        f.single_cube_containment();
        assert_eq!(f.len(), 1);
    }
}
