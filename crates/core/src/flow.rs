//! The composable synthesis flow: the paper's pipeline (Fig. 11/18) as
//! an ordered list of [`Pass`] objects over a shared [`FlowContext`].
//!
//! `Milo::synthesize` used to hard-code the five stages — micro critic →
//! logic compilers → bottom-up logic optimization → electric critic →
//! time/area optimizers — in one monolithic function. They are now
//! individual passes ([`MicroCritic`], [`Compile`], [`BottomUpLogic`],
//! [`FanoutRepair`], [`TimingArea`]) composed by a [`Flow`], which adds
//! insertion points for custom passes, per-pass skip predicates, an
//! observer hook for progress/metrics, and a structured [`FlowReport`]
//! (per-pass wall time, cells/area/delay deltas, applied-rule counts)
//! serializable to JSON. See `docs/FLOW_API.md` for the contract and
//! migration notes.
//!
//! # Examples
//!
//! ```
//! use milo_core::{Constraints, Flow, Milo};
//! use milo_techmap::ecl_library;
//!
//! let nl = milo_core::parse_netlist("
//! design demo
//! input a b
//! output y
//! comp and2 g A0=a A1=b Y=y
//! ")?;
//! let mut milo = Milo::new(ecl_library());
//! let mut flow = milo.flow(); // the default paper flow
//! let out = flow.run(&mut milo, &nl, &Constraints::none())?;
//! assert_eq!(out.report.passes.len(), 5);
//! assert!(out.result.stats.cells >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::constraints::Constraints;
use crate::pipeline::{elaborate_baseline, Milo, MiloError, SynthesisResult};
use milo_compilers::expand_micro_components;
use milo_microarch::CriticReport;
use milo_netlist::{validate, DesignDb, Netlist, Violation};
use milo_opt::{LevelReport, TimingReport};
use milo_techmap::{enforce_fanout, map_netlist, TechLibrary};
use milo_timing::{statistics, DesignStats};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------

/// The shared state a [`Flow`] threads through its passes.
///
/// `work` is the netlist being transformed: the entry design before the
/// compilers run, the expanded hierarchy top afterwards, and the
/// technology-mapped implementation once a mapping pass ([`BottomUpLogic`]
/// or [`FlowContext::ensure_mapped`]) has run.
pub struct FlowContext<'a> {
    /// The entry netlist, untouched (micro- or gate-level).
    pub entry: &'a Netlist,
    /// The user constraints for this run.
    pub constraints: &'a Constraints,
    /// The target technology library.
    pub lib: &'a TechLibrary,
    /// The design database compiled designs accumulate into.
    pub db: &'a mut DesignDb,
    /// The netlist being transformed.
    pub work: Netlist,
    /// The database name of the compiled top, once [`Compile`] has run.
    pub top_name: Option<String>,
    /// Whether `work` is technology-mapped.
    pub mapped: bool,
    /// Microarchitecture critic report, once [`MicroCritic`] has run on a
    /// micro-level entry.
    pub critic: Option<CriticReport>,
    /// Per-level reports from [`BottomUpLogic`].
    pub levels: Vec<LevelReport>,
    /// Timing-optimizer report, once [`TimingArea`] has run.
    pub timing: Option<TimingReport>,
    /// Buffers inserted by electric-critic passes so far.
    pub buffers_inserted: usize,
}

impl FlowContext<'_> {
    /// Ensures `work` is a flat, technology-mapped netlist, so electric
    /// and timing passes can run even when the mapping pass
    /// ([`BottomUpLogic`]) was skipped or reordered away: the compiled
    /// hierarchy (or the raw entry) is flattened and direct-mapped,
    /// exactly like the unoptimized baseline.
    ///
    /// # Errors
    ///
    /// Propagates compile / flatten / mapping errors.
    pub fn ensure_mapped(&mut self) -> Result<(), MiloError> {
        if self.mapped {
            return Ok(());
        }
        let top = self.sync_top()?;
        let flat = self.db.flatten(&top)?;
        self.work = map_netlist(&flat, self.lib)?;
        self.mapped = true;
        Ok(())
    }

    /// Ensures `work` is the compiled (micro-expanded) top, running the
    /// logic compilers if [`Compile`] has not. The top itself is
    /// published to the database lazily, by [`FlowContext::sync_top`] —
    /// so passes between compilation and mapping are free to keep
    /// transforming `work` in place.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn ensure_compiled(&mut self) -> Result<(), MiloError> {
        if self.top_name.is_some() {
            return Ok(());
        }
        let mut compiled = std::mem::take(&mut self.work);
        compiled.name = format!("{}__milo", self.entry.name);
        expand_micro_components(&mut compiled, self.db)
            .map_err(|e| MiloError::Compile(e.to_string()))?;
        self.top_name = Some(compiled.name.clone());
        self.work = compiled;
        Ok(())
    }

    /// Publishes the current `work` into the database as the top design
    /// and returns its name. Mapping passes call this right before
    /// flattening, so any in-place edits a custom pass made to `work`
    /// since compilation always take effect.
    ///
    /// After this call `work` is logically owned by the database; the
    /// caller is expected to replace it (with the mapped result).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn sync_top(&mut self) -> Result<String, MiloError> {
        self.ensure_compiled()?;
        let name = self.db.insert(std::mem::take(&mut self.work));
        self.top_name = Some(name.clone());
        Ok(name)
    }

    /// Best-effort statistics of `work` (None while `work` still has
    /// unexpanded hierarchy or components without timing models).
    pub fn sample_stats(&self) -> Option<DesignStats> {
        statistics(&self.work).ok()
    }
}

// ---------------------------------------------------------------------
// Pass trait and reports
// ---------------------------------------------------------------------

/// One stage of a synthesis flow.
///
/// Passes must be [`Send`]: the flow body runs on a worker thread,
/// overlapped with the baseline ("human designer") elaboration.
pub trait Pass: Send {
    /// Stable pass name, used for insertion points and skip predicates.
    fn name(&self) -> &str;

    /// Transforms `ctx`, returning what the pass applied. The flow
    /// driver fills in the name, wall time, and before/after statistics
    /// of the returned report.
    ///
    /// # Errors
    ///
    /// A failing pass aborts the flow with its error.
    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError>;
}

/// A boxed pass is itself a pass, so `flow.remove("…")`'s return value
/// can be handed straight back to `push` / `insert_before` /
/// `insert_after` — the remove-and-reinsert reorder idiom.
impl Pass for Box<dyn Pass> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        self.as_mut().run(ctx)
    }
}

/// What one pass did: filled partly by the pass (`rules_applied`,
/// `note`), partly by the [`Flow`] driver (name, wall time, sampled
/// statistics).
#[derive(Clone, Debug, Default)]
pub struct PassReport {
    /// Pass name.
    pub name: String,
    /// Whether the pass was skipped (by its skip predicate).
    pub skipped: bool,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Rules / strategies / repairs the pass applied.
    pub rules_applied: usize,
    /// Free-form detail ("3 levels", "timing met", …).
    pub note: String,
    /// Statistics of `work` as the pass started (best effort).
    pub before: Option<DesignStats>,
    /// Statistics of `work` as the pass finished (best effort).
    pub after: Option<DesignStats>,
}

impl PassReport {
    /// A report carrying only an applied-rule count.
    pub fn applied(rules_applied: usize) -> Self {
        Self {
            rules_applied,
            ..Self::default()
        }
    }

    /// A report with an applied count and a free-form note.
    pub fn noted(rules_applied: usize, note: impl Into<String>) -> Self {
        Self {
            rules_applied,
            note: note.into(),
            ..Self::default()
        }
    }

    /// Cell-count delta across the pass (`after - before`), when both
    /// sides were measurable.
    pub fn cells_delta(&self) -> Option<i64> {
        Some(self.after?.cells as i64 - self.before?.cells as i64)
    }

    /// Area delta across the pass, when measurable.
    pub fn area_delta(&self) -> Option<f64> {
        Some(self.after?.area - self.before?.area)
    }

    /// Delay delta across the pass, when measurable.
    pub fn delay_delta(&self) -> Option<f64> {
        Some(self.after?.delay - self.before?.delay)
    }
}

/// The structured record of a whole flow run: per-pass reports plus
/// total wall time. Serializable with [`FlowReport::to_json`] for
/// service embedding.
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// Name of the synthesized design.
    pub design: String,
    /// One report per configured pass, in execution order (skipped
    /// passes included, flagged).
    pub passes: Vec<PassReport>,
    /// Wall-clock time of the whole run, including the final electric
    /// check and the overlapped baseline elaboration.
    pub total_wall: Duration,
}

impl FlowReport {
    /// Hand-rolled JSON encoding (the build environment has no serde):
    /// `{"design", "total_ns", "passes": [{name, skipped, wall_ns,
    /// rules_applied, cells_delta, area_delta, delay_delta, note}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\": {}", json_string(&self.design)));
        out.push_str(&format!(", \"total_ns\": {}", self.total_wall.as_nanos()));
        out.push_str(", \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"skipped\": {}, \"wall_ns\": {}, \"rules_applied\": {}, \
                 \"cells_delta\": {}, \"area_delta\": {}, \"delay_delta\": {}, \"note\": {}}}",
                json_string(&p.name),
                p.skipped,
                p.wall.as_nanos(),
                p.rules_applied,
                json_opt_i64(p.cells_delta()),
                json_opt_f64(p.area_delta()),
                json_opt_f64(p.delay_delta()),
                json_string(&p.note),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Everything [`Flow::run`] produces: the synthesis result plus the
/// structured flow report.
#[derive(Debug)]
pub struct FlowOutput {
    /// The synthesis result (same shape `Milo::synthesize` returns).
    pub result: SynthesisResult,
    /// Per-pass timings and deltas for this run.
    pub report: FlowReport,
}

impl FlowOutput {
    /// JSON object nesting the [`SynthesisResult`] summary and the
    /// [`FlowReport`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"result\": {}, \"flow\": {}}}",
            self.result.to_json(),
            self.report.to_json()
        )
    }
}

/// Escapes a string for JSON.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats as-is; non-finite (and absent) values as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_owned())
}

fn json_opt_i64(v: Option<i64>) -> String {
    v.map(|x| x.to_string())
        .unwrap_or_else(|| "null".to_owned())
}

// ---------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------

/// Progress events delivered to a flow observer.
#[derive(Debug)]
pub enum FlowEvent<'a> {
    /// The flow is starting `passes` passes on `design`.
    FlowStarted {
        /// Entry design name.
        design: &'a str,
        /// Number of configured passes.
        passes: usize,
    },
    /// A pass is about to run.
    PassStarted {
        /// Position in the pass list.
        index: usize,
        /// Pass name.
        name: &'a str,
    },
    /// A pass finished (or was skipped — see [`PassReport::skipped`]).
    PassFinished {
        /// Position in the pass list.
        index: usize,
        /// The driver-completed report.
        report: &'a PassReport,
    },
}

type ObserverFn = dyn FnMut(&FlowEvent<'_>) + Send;
type SkipFn = dyn Fn(&FlowContext<'_>) -> bool + Send;

// ---------------------------------------------------------------------
// Flow
// ---------------------------------------------------------------------

struct Slot {
    pass: Box<dyn Pass>,
    skip: Option<Box<SkipFn>>,
}

/// An ordered, composable list of passes plus run policy (baseline
/// elaboration, statistics sampling, observer).
///
/// [`Flow::standard`] is the paper pipeline; [`Milo::flow`] returns it.
/// Passes can be appended, inserted before/after a named pass, removed,
/// or skipped per-run through a predicate over the [`FlowContext`].
pub struct Flow {
    slots: Vec<Slot>,
    observer: Option<Box<ObserverFn>>,
    baseline: bool,
    sample_stats: bool,
}

impl Default for Flow {
    fn default() -> Self {
        Self::standard()
    }
}

impl Flow {
    /// An empty flow (the driver epilogue still maps, repairs fanout,
    /// and validates, so even this produces a legal mapped netlist).
    pub fn empty() -> Self {
        Self {
            slots: Vec::new(),
            observer: None,
            baseline: true,
            sample_stats: true,
        }
    }

    /// The default paper flow: [`MicroCritic`] → [`Compile`] →
    /// [`BottomUpLogic`] → [`FanoutRepair`] → [`TimingArea`].
    pub fn standard() -> Self {
        let mut flow = Self::empty();
        flow.push(MicroCritic);
        flow.push(Compile);
        flow.push(BottomUpLogic);
        flow.push(FanoutRepair);
        flow.push(TimingArea);
        flow
    }

    /// The configured pass names, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.pass.name()).collect()
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.slots.push(Slot {
            pass: Box::new(pass),
            skip: None,
        });
        self
    }

    /// Inserts a pass before the pass named `anchor`.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `anchor` (a mis-built flow is a
    /// programming error, caught at construction).
    pub fn insert_before(&mut self, anchor: &str, pass: impl Pass + 'static) -> &mut Self {
        let at = self.position(anchor);
        self.slots.insert(
            at,
            Slot {
                pass: Box::new(pass),
                skip: None,
            },
        );
        self
    }

    /// Inserts a pass after the pass named `anchor`.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `anchor`.
    pub fn insert_after(&mut self, anchor: &str, pass: impl Pass + 'static) -> &mut Self {
        let at = self.position(anchor) + 1;
        self.slots.insert(
            at,
            Slot {
                pass: Box::new(pass),
                skip: None,
            },
        );
        self
    }

    /// Removes (and returns) the pass named `name`, if present.
    pub fn remove(&mut self, name: &str) -> Option<Box<dyn Pass>> {
        let at = self.slots.iter().position(|s| s.pass.name() == name)?;
        Some(self.slots.remove(at).pass)
    }

    /// Skips the pass named `name` whenever `pred` holds at its turn.
    /// The skipped pass still appears in the [`FlowReport`], flagged.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `name`.
    pub fn skip_when(
        &mut self,
        name: &str,
        pred: impl Fn(&FlowContext<'_>) -> bool + Send + 'static,
    ) -> &mut Self {
        let at = self.position(name);
        self.slots[at].skip = Some(Box::new(pred));
        self
    }

    /// Installs the observer called on every [`FlowEvent`].
    pub fn observe(&mut self, f: impl FnMut(&FlowEvent<'_>) + Send + 'static) -> &mut Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Disables the parallel baseline ("human designer") elaboration;
    /// the result's `baseline` statistics come back zeroed.
    pub fn without_baseline(&mut self) -> &mut Self {
        self.baseline = false;
        self
    }

    /// Enables / disables best-effort per-pass statistics sampling
    /// (on by default; disable to shave STA runs off very hot loops).
    pub fn sample_stats(&mut self, on: bool) -> &mut Self {
        self.sample_stats = on;
        self
    }

    fn position(&self, name: &str) -> usize {
        self.slots
            .iter()
            .position(|s| s.pass.name() == name)
            .unwrap_or_else(|| panic!("flow has no pass named {name:?}"))
    }

    /// Runs the flow on `nl` under `constraints`, against `milo`'s
    /// library and design database. The baseline elaboration (when
    /// enabled) runs on a parallel arm over an `Arc`-shared database
    /// snapshot while the pass list runs here; results are
    /// deterministic — both arms are pure functions of their inputs.
    ///
    /// # Errors
    ///
    /// Propagates the first failing pass / stage error.
    pub fn run(
        &mut self,
        milo: &mut Milo,
        nl: &Netlist,
        constraints: &Constraints,
    ) -> Result<FlowOutput, MiloError> {
        let started = Instant::now();
        let (lib, db) = milo.parts_mut();
        let (baseline_res, main_res) = if self.baseline {
            // The snapshot clone copies Arc pointers, not netlists.
            let snapshot = db.clone();
            let baseline_lib = lib.clone();
            milo_par::join(
                move || Some(elaborate_baseline(snapshot, &baseline_lib, nl)),
                || self.run_passes(lib, db, nl, constraints),
            )
        } else {
            (None, self.run_passes(lib, db, nl, constraints))
        };
        let baseline = match baseline_res {
            Some(r) => r?,
            None => DesignStats::default(),
        };
        let (mut result, mut report) = main_res?;
        result.baseline = baseline;
        report.total_wall = started.elapsed();
        Ok(FlowOutput { result, report })
    }

    /// The main arm: every pass in order, then the final electric check.
    fn run_passes(
        &mut self,
        lib: &TechLibrary,
        db: &mut DesignDb,
        nl: &Netlist,
        constraints: &Constraints,
    ) -> Result<(SynthesisResult, FlowReport), MiloError> {
        let mut ctx = FlowContext {
            entry: nl,
            constraints,
            lib,
            db,
            work: nl.clone(),
            top_name: None,
            mapped: false,
            critic: None,
            levels: Vec::new(),
            timing: None,
            buffers_inserted: 0,
        };
        let mut report = FlowReport {
            design: nl.name.clone(),
            ..FlowReport::default()
        };
        if let Some(obs) = self.observer.as_mut() {
            obs(&FlowEvent::FlowStarted {
                design: &nl.name,
                passes: self.slots.len(),
            });
        }
        // One pass's `after` statistics double as the next pass's
        // `before` — the netlist is untouched at the boundary (and by
        // skipped passes), so sampling once per transition suffices.
        let mut carried: Option<DesignStats> = None;
        for (index, slot) in self.slots.iter_mut().enumerate() {
            let name = slot.pass.name().to_owned();
            if let Some(obs) = self.observer.as_mut() {
                obs(&FlowEvent::PassStarted { index, name: &name });
            }
            let skipped = slot.skip.as_ref().is_some_and(|pred| pred(&ctx));
            let before = if self.sample_stats && !skipped {
                carried.take().or_else(|| ctx.sample_stats())
            } else {
                None
            };
            let pass_started = Instant::now();
            let mut pr = if skipped {
                PassReport {
                    skipped: true,
                    ..PassReport::default()
                }
            } else {
                slot.pass.run(&mut ctx)?
            };
            pr.name = name;
            pr.wall = pass_started.elapsed();
            pr.before = before;
            pr.after = if self.sample_stats && !skipped {
                carried = ctx.sample_stats();
                carried
            } else {
                None
            };
            if let Some(obs) = self.observer.as_mut() {
                obs(&FlowEvent::PassFinished { index, report: &pr });
            }
            report.passes.push(pr);
        }

        // Final electric check (the fixed epilogue): whatever passes ran
        // or were skipped, the output is a mapped netlist with legal
        // fanout, no dead nets, and a timing report.
        ctx.ensure_mapped()?;
        let buffers2 = enforce_fanout(&mut ctx.work, lib)?;
        ctx.work.sweep_dead_nets();
        let violations: Vec<Violation> = validate(&ctx.work, true)
            .into_iter()
            .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
            .collect();
        let stats = statistics(&ctx.work)?;
        let timing = match ctx.timing {
            Some(t) => t,
            None => {
                let d = milo_timing::analyze(&ctx.work)
                    .map(|s| s.worst_delay())
                    .unwrap_or(0.0);
                TimingReport {
                    met: true,
                    initial_delay: d,
                    final_delay: d,
                    applied: Vec::new(),
                }
            }
        };
        let result = SynthesisResult {
            netlist: ctx.work,
            stats,
            baseline: DesignStats::default(), // overlapped arm fills this in
            critic: ctx.critic,
            levels: ctx.levels,
            timing,
            violations,
            buffers_inserted: ctx.buffers_inserted + buffers2,
        };
        Ok((result, report))
    }
}

// ---------------------------------------------------------------------
// The five paper passes
// ---------------------------------------------------------------------

/// Stage 1: the microarchitecture critic (§5) — structural rewrites plus
/// the compile→map feedback loop, on micro-level entries only.
pub struct MicroCritic;

impl Pass for MicroCritic {
    fn name(&self) -> &str {
        "micro-critic"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let has_micro = ctx.work.component_ids().any(|id| {
            matches!(
                ctx.work.component(id).map(|c| &c.kind),
                Ok(milo_netlist::ComponentKind::Micro(_))
            )
        });
        if !has_micro {
            return Ok(PassReport::noted(0, "gate-level entry"));
        }
        let critic = milo_microarch::optimize(
            &mut ctx.work,
            ctx.db,
            ctx.lib,
            ctx.constraints.tightest_delay(),
        )?;
        let applied = critic.fired.len() + critic.cla_upgrades + critic.ripple_downgrades;
        let note = format!("fired {:?}", critic.fired);
        ctx.critic = Some(critic);
        Ok(PassReport::noted(applied, note))
    }
}

/// Stage 2a: the parameterized logic compilers (§6.1) — expands micro
/// components into generic macros, caching designs in the database.
pub struct Compile;

impl Pass for Compile {
    fn name(&self) -> &str {
        "compile"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let before = ctx.db.len();
        ctx.ensure_compiled()?;
        let added = ctx.db.len().saturating_sub(before);
        Ok(PassReport::noted(
            added,
            format!("{added} designs compiled into the database"),
        ))
    }
}

/// Stage 2b: hierarchical bottom-up logic optimization (Fig. 18) —
/// maps every level and runs the rule engine, leaves `work` mapped.
pub struct BottomUpLogic;

impl Pass for BottomUpLogic {
    fn name(&self) -> &str {
        "bottom-up-logic"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let top = ctx.sync_top()?;
        let (mapped, levels) = milo_opt::optimize_bottom_up(&top, ctx.db, ctx.lib)?;
        let fired: usize = levels.iter().map(|l| l.fired).sum();
        let note = format!("{} levels", levels.len());
        ctx.work = mapped;
        ctx.mapped = true;
        ctx.levels = levels;
        Ok(PassReport::noted(fired, note))
    }
}

/// Stage 3: the electric critic (§4.2) — fanout repair by buffer
/// insertion.
pub struct FanoutRepair;

impl Pass for FanoutRepair {
    fn name(&self) -> &str {
        "fanout-repair"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.ensure_mapped()?;
        let buffers = enforce_fanout(&mut ctx.work, ctx.lib)?;
        ctx.buffers_inserted += buffers;
        Ok(PassReport::noted(
            buffers,
            format!("{buffers} buffers inserted"),
        ))
    }
}

/// Stages 4+: the time optimizer (per-path constraints, §6's path-delay
/// parameters), then the area/power optimizer on the remaining slack.
pub struct TimingArea;

impl Pass for TimingArea {
    fn name(&self) -> &str {
        "timing-area"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.ensure_mapped()?;
        let hash = milo_rules::HashRuleTable::cached(&milo_rules::LibraryRef {
            cells: ctx.lib.cells(),
        });
        let timing = if ctx.constraints.has_timing() {
            let c = ctx.constraints.clone();
            milo_opt::optimize_timing_paths(
                &mut ctx.work,
                ctx.lib,
                &hash,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            )
        } else {
            let d = milo_timing::analyze(&ctx.work)
                .map(|s| s.worst_delay())
                .unwrap_or(0.0);
            TimingReport {
                met: true,
                initial_delay: d,
                final_delay: d,
                applied: Vec::new(),
            }
        };
        let area_steps = {
            let c = ctx.constraints.clone();
            milo_opt::optimize_area_paths(
                &mut ctx.work,
                ctx.lib,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            )
        };
        let applied = timing.applied.len() + area_steps;
        let note = format!(
            "timing {}, {} strategies, {} area steps",
            if timing.met { "met" } else { "missed" },
            timing.applied.len(),
            area_steps
        );
        ctx.timing = Some(timing);
        Ok(PassReport::noted(applied, note))
    }
}
