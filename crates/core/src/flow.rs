//! The composable synthesis flow: the paper's pipeline (Fig. 11/18) as
//! an ordered list of [`Pass`] objects over a shared [`FlowContext`].
//!
//! `Milo::synthesize` used to hard-code the five stages — micro critic →
//! logic compilers → bottom-up logic optimization → electric critic →
//! time/area optimizers — in one monolithic function. They are now
//! individual passes ([`MicroCritic`], [`Compile`], [`BottomUpLogic`],
//! [`FanoutRepair`], [`TimingArea`]) composed by a [`Flow`], which adds
//! insertion points for custom passes, per-pass skip predicates, an
//! observer hook for progress/metrics, and a structured [`FlowReport`]
//! (per-pass wall time, cells/area/delay deltas, applied-rule counts)
//! serializable to JSON. See `docs/FLOW_API.md` for the contract and
//! migration notes.
//!
//! # Examples
//!
//! ```
//! use milo_core::{Constraints, Flow, Milo};
//! use milo_techmap::ecl_library;
//!
//! let nl = milo_core::parse_netlist("
//! design demo
//! input a b
//! output y
//! comp and2 g A0=a A1=b Y=y
//! ")?;
//! let mut milo = Milo::new(ecl_library());
//! let mut flow = milo.flow(); // the default paper flow
//! let out = flow.run(&mut milo, &nl, &Constraints::none())?;
//! assert_eq!(out.report.passes.len(), 5);
//! assert!(out.result.stats.cells >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::constraints::Constraints;
use crate::fault::{FaultInjector, FaultKind};
use crate::pipeline::{elaborate_baseline, Milo, MiloError, RecoveryAction, SynthesisResult};
use milo_compilers::expand_micro_components;
use milo_microarch::CriticReport;
use milo_netlist::{fatal_violations, validate, DesignDb, Netlist, Violation};
use milo_opt::{LevelReport, TimingReport};
use milo_techmap::{enforce_fanout, map_netlist, TechLibrary};
use milo_timing::{statistics, DesignStats};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------

/// The shared state a [`Flow`] threads through its passes.
///
/// `work` is the netlist being transformed: the entry design before the
/// compilers run, the expanded hierarchy top afterwards, and the
/// technology-mapped implementation once a mapping pass ([`BottomUpLogic`]
/// or [`FlowContext::ensure_mapped`]) has run.
pub struct FlowContext<'a> {
    /// The entry netlist, untouched (micro- or gate-level).
    pub entry: &'a Netlist,
    /// The user constraints for this run.
    pub constraints: &'a Constraints,
    /// The target technology library.
    pub lib: &'a TechLibrary,
    /// The design database compiled designs accumulate into.
    pub db: &'a mut DesignDb,
    /// The netlist being transformed.
    pub work: Netlist,
    /// The database name of the compiled top, once [`Compile`] has run.
    pub top_name: Option<String>,
    /// Whether `work` is technology-mapped.
    pub mapped: bool,
    /// Microarchitecture critic report, once [`MicroCritic`] has run on a
    /// micro-level entry.
    pub critic: Option<CriticReport>,
    /// Per-level reports from [`BottomUpLogic`].
    pub levels: Vec<LevelReport>,
    /// Timing-optimizer report, once [`TimingArea`] has run.
    pub timing: Option<TimingReport>,
    /// Buffers inserted by electric-critic passes so far.
    pub buffers_inserted: usize,
}

impl FlowContext<'_> {
    /// Ensures `work` is a flat, technology-mapped netlist, so electric
    /// and timing passes can run even when the mapping pass
    /// ([`BottomUpLogic`]) was skipped or reordered away: the compiled
    /// hierarchy (or the raw entry) is flattened and direct-mapped,
    /// exactly like the unoptimized baseline.
    ///
    /// # Errors
    ///
    /// Propagates compile / flatten / mapping errors.
    pub fn ensure_mapped(&mut self) -> Result<(), MiloError> {
        if self.mapped {
            return Ok(());
        }
        let top = self.sync_top()?;
        let flat = self.db.flatten(&top)?;
        self.work = map_netlist(&flat, self.lib)?;
        self.mapped = true;
        Ok(())
    }

    /// Ensures `work` is the compiled (micro-expanded) top, running the
    /// logic compilers if [`Compile`] has not. The top itself is
    /// published to the database lazily, by [`FlowContext::sync_top`] —
    /// so passes between compilation and mapping are free to keep
    /// transforming `work` in place.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn ensure_compiled(&mut self) -> Result<(), MiloError> {
        if self.top_name.is_some() {
            return Ok(());
        }
        let mut compiled = std::mem::take(&mut self.work);
        compiled.name = format!("{}__milo", self.entry.name);
        expand_micro_components(&mut compiled, self.db)
            .map_err(|e| MiloError::Compile(e.to_string()))?;
        self.top_name = Some(compiled.name.clone());
        self.work = compiled;
        Ok(())
    }

    /// Publishes the current `work` into the database as the top design
    /// and returns its name. Mapping passes call this right before
    /// flattening, so any in-place edits a custom pass made to `work`
    /// since compilation always take effect.
    ///
    /// After this call `work` is logically owned by the database; the
    /// caller is expected to replace it (with the mapped result).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn sync_top(&mut self) -> Result<String, MiloError> {
        self.ensure_compiled()?;
        let name = self.db.insert(std::mem::take(&mut self.work));
        self.top_name = Some(name.clone());
        Ok(name)
    }

    /// Best-effort statistics of `work` (None while `work` still has
    /// unexpanded hierarchy or components without timing models).
    pub fn sample_stats(&self) -> Option<DesignStats> {
        statistics(&self.work).ok()
    }
}

// ---------------------------------------------------------------------
// Fault-tolerance policy
// ---------------------------------------------------------------------

/// What the flow driver does when a pass fails — panics, returns an
/// error, exceeds its [`RewriteBudget`], or leaves a corrupt netlist
/// behind a validation checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailureAction {
    /// Stop the flow and surface the structured error (the historical
    /// behavior, and the default).
    #[default]
    Abort,
    /// Record the failure, restore the pre-pass checkpoint (except on
    /// budget exhaustion, where the partial work is valid and kept),
    /// and continue with the remaining passes. The run is marked
    /// [`FlowReport::degraded`].
    SkipPass,
    /// Record the failure, always restore the pre-pass checkpoint, and
    /// continue. The run is marked [`FlowReport::degraded`].
    RollbackAndContinue,
}

/// A per-pass work limit. `None` fields are unlimited. The driver
/// checks the budget after the pass returns — passes are not preempted,
/// so `max_wall` bounds *accepted* work, not execution time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteBudget {
    /// Maximum `rules_applied` the pass may report.
    pub max_rewrites: Option<usize>,
    /// Maximum wall-clock time the pass may spend.
    pub max_wall: Option<Duration>,
}

impl RewriteBudget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limits applied rewrites.
    pub fn rewrites(max: usize) -> Self {
        Self {
            max_rewrites: Some(max),
            max_wall: None,
        }
    }

    /// Limits wall-clock time.
    pub fn wall(max: Duration) -> Self {
        Self {
            max_rewrites: None,
            max_wall: Some(max),
        }
    }

    /// Builder: adds a wall-clock limit to an existing budget.
    #[must_use]
    pub fn and_wall(mut self, max: Duration) -> Self {
        self.max_wall = Some(max);
        self
    }

    fn exceeded(&self, rules_applied: usize, wall: Duration) -> Option<String> {
        if let Some(max) = self.max_rewrites {
            if rules_applied > max {
                return Some(format!("{rules_applied} rewrites > budget {max}"));
            }
        }
        if let Some(max) = self.max_wall {
            if wall > max {
                return Some(format!("{wall:?} wall > budget {max:?}"));
            }
        }
        None
    }
}

/// Fault-tolerance policy for one pass: a work budget plus what to do
/// on failure. Attached with [`Flow::with_policy`]; passes without a
/// policy run unlimited and abort on failure, exactly as before.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassPolicy {
    /// The pass's work budget.
    pub budget: RewriteBudget,
    /// What the driver does when the pass fails.
    pub on_failure: FailureAction,
}

impl PassPolicy {
    /// A policy with the given failure action and no budget.
    pub fn on_failure(action: FailureAction) -> Self {
        Self {
            budget: RewriteBudget::unlimited(),
            on_failure: action,
        }
    }

    /// Builder: sets the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: RewriteBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// How a pass's slot in the flow concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PassOutcome {
    /// The pass ran to completion.
    #[default]
    Completed,
    /// The pass was skipped by its skip predicate.
    Skipped,
    /// The pass failed and was skipped over by [`FailureAction::SkipPass`]
    /// (netlist restored, except after budget exhaustion).
    FailedSkipped,
    /// The pass failed and [`FailureAction::RollbackAndContinue`]
    /// restored the pre-pass checkpoint.
    RolledBack,
}

impl PassOutcome {
    /// Stable lowercase token used in the JSON report.
    pub fn as_str(&self) -> &'static str {
        match self {
            PassOutcome::Completed => "completed",
            PassOutcome::Skipped => "skipped",
            PassOutcome::FailedSkipped => "failed-skipped",
            PassOutcome::RolledBack => "rolled-back",
        }
    }
}

/// Run-wide switches for a [`Flow`], settable wholesale through
/// [`Flow::options_mut`] or individually through the builder methods.
#[derive(Clone, Copy, Debug)]
pub struct FlowOptions {
    /// Run the parallel baseline ("human designer") elaboration.
    pub baseline: bool,
    /// Sample best-effort per-pass statistics.
    pub sample_stats: bool,
    /// Run the structural corruption check ([`fatal_violations`]) after
    /// every non-skipped pass, turning silent corruption into a
    /// `ValidationFailed` at the pass that caused it.
    pub validate_each_pass: bool,
    /// Catch pass panics and convert them to `PassPanicked` errors
    /// (on by default). Off, a panicking pass unwinds to the caller.
    pub isolate_panics: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            baseline: true,
            sample_stats: true,
            validate_each_pass: false,
            isolate_panics: true,
        }
    }
}

/// A restorable snapshot of the flow's mutable state, captured before a
/// pass that has a non-abort policy (or when validation checkpoints are
/// on). The design-database snapshot is an `Arc`-backed name-table copy
/// — compiled designs are shared, not deep-cloned; only the work
/// netlist itself is cloned.
struct Checkpoint {
    work: Netlist,
    db: DesignDb,
    top_name: Option<String>,
    mapped: bool,
    critic: Option<CriticReport>,
    levels: Vec<LevelReport>,
    timing: Option<TimingReport>,
    buffers_inserted: usize,
}

impl Checkpoint {
    fn capture(ctx: &FlowContext<'_>) -> Self {
        Self {
            work: ctx.work.clone(),
            db: ctx.db.clone(),
            top_name: ctx.top_name.clone(),
            mapped: ctx.mapped,
            critic: ctx.critic.clone(),
            levels: ctx.levels.clone(),
            timing: ctx.timing.clone(),
            buffers_inserted: ctx.buffers_inserted,
        }
    }

    fn restore(self, ctx: &mut FlowContext<'_>) {
        ctx.work = self.work;
        *ctx.db = self.db;
        ctx.top_name = self.top_name;
        ctx.mapped = self.mapped;
        ctx.critic = self.critic;
        ctx.levels = self.levels;
        ctx.timing = self.timing;
        ctx.buffers_inserted = self.buffers_inserted;
    }
}

// ---------------------------------------------------------------------
// Pass trait and reports
// ---------------------------------------------------------------------

/// One stage of a synthesis flow.
///
/// Passes must be [`Send`]: the flow body runs on a worker thread,
/// overlapped with the baseline ("human designer") elaboration.
pub trait Pass: Send {
    /// Stable pass name, used for insertion points and skip predicates.
    fn name(&self) -> &str;

    /// Transforms `ctx`, returning what the pass applied. The flow
    /// driver fills in the name, wall time, and before/after statistics
    /// of the returned report.
    ///
    /// # Errors
    ///
    /// A failing pass aborts the flow with its error — unless a
    /// [`PassPolicy`] with a non-abort [`FailureAction`] is attached,
    /// in which case the driver records the failure and continues.
    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError>;
}

/// A boxed pass is itself a pass, so `flow.remove("…")`'s return value
/// can be handed straight back to `push` / `insert_before` /
/// `insert_after` — the remove-and-reinsert reorder idiom.
impl Pass for Box<dyn Pass> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        self.as_mut().run(ctx)
    }
}

/// What one pass did: filled partly by the pass (`rules_applied`,
/// `note`), partly by the [`Flow`] driver (name, wall time, sampled
/// statistics).
#[derive(Clone, Debug, Default)]
pub struct PassReport {
    /// Pass name.
    pub name: String,
    /// Whether the pass was skipped (by its skip predicate). Kept for
    /// compatibility; `outcome` is the richer signal.
    pub skipped: bool,
    /// How the slot concluded (completed / skipped / failed-skipped /
    /// rolled-back).
    pub outcome: PassOutcome,
    /// The failure the driver recovered from, when `outcome` is
    /// [`PassOutcome::FailedSkipped`] or [`PassOutcome::RolledBack`].
    pub error: Option<String>,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Rules / strategies / repairs the pass applied.
    pub rules_applied: usize,
    /// Free-form detail ("3 levels", "timing met", …).
    pub note: String,
    /// Statistics of `work` as the pass started (best effort).
    pub before: Option<DesignStats>,
    /// Statistics of `work` as the pass finished (best effort).
    pub after: Option<DesignStats>,
}

impl PassReport {
    /// A report carrying only an applied-rule count.
    pub fn applied(rules_applied: usize) -> Self {
        Self {
            rules_applied,
            ..Self::default()
        }
    }

    /// A report with an applied count and a free-form note.
    pub fn noted(rules_applied: usize, note: impl Into<String>) -> Self {
        Self {
            rules_applied,
            note: note.into(),
            ..Self::default()
        }
    }

    /// Cell-count delta across the pass (`after - before`), when both
    /// sides were measurable.
    pub fn cells_delta(&self) -> Option<i64> {
        Some(self.after?.cells as i64 - self.before?.cells as i64)
    }

    /// Area delta across the pass, when measurable.
    pub fn area_delta(&self) -> Option<f64> {
        Some(self.after?.area - self.before?.area)
    }

    /// Delay delta across the pass, when measurable.
    pub fn delay_delta(&self) -> Option<f64> {
        Some(self.after?.delay - self.before?.delay)
    }
}

/// The structured record of a whole flow run: per-pass reports plus
/// total wall time. Serializable with [`FlowReport::to_json`] for
/// service embedding.
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// Name of the synthesized design.
    pub design: String,
    /// One report per configured pass, in execution order (skipped
    /// passes included, flagged).
    pub passes: Vec<PassReport>,
    /// Whether any pass failed and was recovered from (skipped over or
    /// rolled back) instead of completing — the output is legal but may
    /// be less optimized than a clean run's.
    pub degraded: bool,
    /// Structural fingerprint (`milo_netlist::structural_hash`) of the
    /// result netlist, filled by the flow driver after the epilogue.
    /// Clients and fuzz harnesses verify result identity from the JSON
    /// report alone — no netlist reload needed.
    pub result_hash: Option<u64>,
    /// Wall-clock time of the whole run, including the final electric
    /// check and the overlapped baseline elaboration.
    pub total_wall: Duration,
}

impl FlowReport {
    /// Hand-rolled JSON encoding (the build environment has no serde):
    /// `{"design", "structural_hash", "total_ns", "degraded", "passes":
    /// [{name, skipped, outcome, error, wall_ns, rules_applied,
    /// cells_delta, area_delta, delay_delta, note}]}`.
    ///
    /// `structural_hash` is the result netlist's fingerprint as a hex
    /// string (`"0x…"`, 16 digits) — a string because u64 fingerprints
    /// exceed JSON's interoperable 2^53 integer range.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"design\": {}", json_string(&self.design)));
        out.push_str(&format!(
            ", \"structural_hash\": {}",
            match self.result_hash {
                Some(h) => format!("\"{h:#018x}\""),
                None => "null".to_owned(),
            }
        ));
        out.push_str(&format!(", \"total_ns\": {}", self.total_wall.as_nanos()));
        out.push_str(&format!(", \"degraded\": {}", self.degraded));
        out.push_str(", \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": {}, \"skipped\": {}, \"outcome\": {}, \"error\": {}, \
                 \"wall_ns\": {}, \"rules_applied\": {}, \
                 \"cells_delta\": {}, \"area_delta\": {}, \"delay_delta\": {}, \"note\": {}}}",
                json_string(&p.name),
                p.skipped,
                json_string(p.outcome.as_str()),
                p.error
                    .as_deref()
                    .map(json_string)
                    .unwrap_or_else(|| "null".to_owned()),
                p.wall.as_nanos(),
                p.rules_applied,
                json_opt_i64(p.cells_delta()),
                json_opt_f64(p.area_delta()),
                json_opt_f64(p.delay_delta()),
                json_string(&p.note),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Everything [`Flow::run`] produces: the synthesis result plus the
/// structured flow report.
#[derive(Debug)]
pub struct FlowOutput {
    /// The synthesis result (same shape `Milo::synthesize` returns).
    pub result: SynthesisResult,
    /// Per-pass timings and deltas for this run.
    pub report: FlowReport,
}

impl FlowOutput {
    /// JSON object nesting the [`SynthesisResult`] summary and the
    /// [`FlowReport`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"result\": {}, \"flow\": {}}}",
            self.result.to_json(),
            self.report.to_json()
        )
    }
}

/// Escapes a string for JSON. Covers the full RFC 8259 mandatory set
/// (quote, backslash, C0 controls as `\u` escapes) plus DEL and the
/// U+2028/U+2029 line separators — the latter are legal raw in JSON but
/// break JSON-lines framing and JavaScript embedding, and a wire
/// protocol makes that a real bug rather than a cosmetic one.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats as-is; non-finite (and absent) values as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_owned())
}

fn json_opt_i64(v: Option<i64>) -> String {
    v.map(|x| x.to_string())
        .unwrap_or_else(|| "null".to_owned())
}

// ---------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------

/// Progress events delivered to a flow observer.
#[derive(Debug)]
pub enum FlowEvent<'a> {
    /// The flow is starting `passes` passes on `design`.
    FlowStarted {
        /// Entry design name.
        design: &'a str,
        /// Number of configured passes.
        passes: usize,
    },
    /// A pass is about to run.
    PassStarted {
        /// Position in the pass list.
        index: usize,
        /// Pass name.
        name: &'a str,
    },
    /// A pass finished (or was skipped — see [`PassReport::skipped`]).
    PassFinished {
        /// Position in the pass list.
        index: usize,
        /// The driver-completed report.
        report: &'a PassReport,
    },
}

type ObserverFn = dyn FnMut(&FlowEvent<'_>) + Send;
type SkipFn = dyn Fn(&FlowContext<'_>) -> bool + Send;

// ---------------------------------------------------------------------
// Flow
// ---------------------------------------------------------------------

struct Slot {
    pass: Box<dyn Pass>,
    skip: Option<Box<SkipFn>>,
    policy: Option<PassPolicy>,
}

impl Slot {
    fn new(pass: impl Pass + 'static) -> Self {
        Self {
            pass: Box::new(pass),
            skip: None,
            policy: None,
        }
    }
}

/// An ordered, composable list of passes plus run policy (baseline
/// elaboration, statistics sampling, observer).
///
/// [`Flow::standard`] is the paper pipeline; [`Milo::flow`] returns it.
/// Passes can be appended, inserted before/after a named pass, removed,
/// or skipped per-run through a predicate over the [`FlowContext`].
pub struct Flow {
    slots: Vec<Slot>,
    observer: Option<Box<ObserverFn>>,
    options: FlowOptions,
    fault: Option<Arc<FaultInjector>>,
}

impl Default for Flow {
    fn default() -> Self {
        Self::standard()
    }
}

impl Flow {
    /// An empty flow (the driver epilogue still maps, repairs fanout,
    /// and validates, so even this produces a legal mapped netlist).
    pub fn empty() -> Self {
        Self {
            slots: Vec::new(),
            observer: None,
            options: FlowOptions::default(),
            fault: None,
        }
    }

    /// The default paper flow: [`MicroCritic`] → [`Compile`] →
    /// [`BottomUpLogic`] → [`FanoutRepair`] → [`TimingArea`].
    pub fn standard() -> Self {
        let mut flow = Self::empty();
        flow.push(MicroCritic);
        flow.push(Compile);
        flow.push(BottomUpLogic);
        flow.push(FanoutRepair);
        flow.push(TimingArea);
        flow
    }

    /// The configured pass names, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.pass.name()).collect()
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.slots.push(Slot::new(pass));
        self
    }

    /// Inserts a pass before the pass named `anchor`.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `anchor` (a mis-built flow is a
    /// programming error, caught at construction).
    pub fn insert_before(&mut self, anchor: &str, pass: impl Pass + 'static) -> &mut Self {
        let at = self.position(anchor);
        self.slots.insert(at, Slot::new(pass));
        self
    }

    /// Inserts a pass after the pass named `anchor`.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `anchor`.
    pub fn insert_after(&mut self, anchor: &str, pass: impl Pass + 'static) -> &mut Self {
        let at = self.position(anchor) + 1;
        self.slots.insert(at, Slot::new(pass));
        self
    }

    /// Removes (and returns) the pass named `name`, if present.
    pub fn remove(&mut self, name: &str) -> Option<Box<dyn Pass>> {
        let at = self.slots.iter().position(|s| s.pass.name() == name)?;
        Some(self.slots.remove(at).pass)
    }

    /// Skips the pass named `name` whenever `pred` holds at its turn.
    /// The skipped pass still appears in the [`FlowReport`], flagged.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `name`.
    pub fn skip_when(
        &mut self,
        name: &str,
        pred: impl Fn(&FlowContext<'_>) -> bool + Send + 'static,
    ) -> &mut Self {
        let at = self.position(name);
        self.slots[at].skip = Some(Box::new(pred));
        self
    }

    /// Installs the observer called on every [`FlowEvent`].
    pub fn observe(&mut self, f: impl FnMut(&FlowEvent<'_>) + Send + 'static) -> &mut Self {
        self.observer = Some(Box::new(f));
        self
    }

    /// Disables the parallel baseline ("human designer") elaboration;
    /// the result's `baseline` statistics come back zeroed.
    pub fn without_baseline(&mut self) -> &mut Self {
        self.options.baseline = false;
        self
    }

    /// Enables / disables best-effort per-pass statistics sampling
    /// (on by default; disable to shave STA runs off very hot loops).
    pub fn sample_stats(&mut self, on: bool) -> &mut Self {
        self.options.sample_stats = on;
        self
    }

    /// Enables / disables the post-pass structural validation
    /// checkpoint (off by default; see
    /// [`FlowOptions::validate_each_pass`]).
    pub fn validate_each_pass(&mut self, on: bool) -> &mut Self {
        self.options.validate_each_pass = on;
        self
    }

    /// Enables / disables pass panic isolation (on by default; see
    /// [`FlowOptions::isolate_panics`]).
    pub fn isolate_panics(&mut self, on: bool) -> &mut Self {
        self.options.isolate_panics = on;
        self
    }

    /// Direct access to the run-wide option switches.
    pub fn options_mut(&mut self) -> &mut FlowOptions {
        &mut self.options
    }

    /// Attaches a fault-tolerance [`PassPolicy`] to the pass named
    /// `name`.
    ///
    /// # Panics
    ///
    /// Panics when no pass is named `name`.
    pub fn with_policy(&mut self, name: &str, policy: PassPolicy) -> &mut Self {
        let at = self.position(name);
        self.slots[at].policy = Some(policy);
        self
    }

    /// Arms a fault injector for this flow's runs (test harness; see
    /// [`FaultInjector`]). Runs without an explicit injector fall back
    /// to the `Milo` instance's injector, then to `MILO_FAULT_INJECT`.
    pub fn inject_faults(&mut self, injector: Arc<FaultInjector>) -> &mut Self {
        self.fault = Some(injector);
        self
    }

    fn position(&self, name: &str) -> usize {
        self.slots
            .iter()
            .position(|s| s.pass.name() == name)
            .unwrap_or_else(|| panic!("flow has no pass named {name:?}"))
    }

    /// Runs the flow on `nl` under `constraints`, against `milo`'s
    /// library and design database. The baseline elaboration (when
    /// enabled) runs on a parallel arm over an `Arc`-shared database
    /// snapshot while the pass list runs here; results are
    /// deterministic — both arms are pure functions of their inputs.
    ///
    /// # Errors
    ///
    /// Propagates the first failing pass / stage error. With panic
    /// isolation on (the default), a panic on either arm comes back as
    /// a structured `PassPanicked` instead of unwinding the caller.
    pub fn run(
        &mut self,
        milo: &mut Milo,
        nl: &Netlist,
        constraints: &Constraints,
    ) -> Result<FlowOutput, MiloError> {
        let started = Instant::now();
        let fault = self
            .fault
            .clone()
            .or_else(|| milo.fault_injector())
            .or_else(|| FaultInjector::from_env().map(Arc::new));
        let isolate = self.options.isolate_panics;
        let (lib, db) = milo.parts_mut();
        let (baseline_res, main_res) = if self.options.baseline {
            // The snapshot clone copies Arc pointers, not netlists.
            let snapshot = db.clone();
            let baseline_lib = lib.clone();
            let fault = fault.clone();
            milo_par::try_join(
                move || Some(elaborate_baseline(snapshot, &baseline_lib, nl)),
                move || self.run_passes(lib, db, nl, constraints, fault.as_deref()),
            )
        } else {
            let fault = fault.clone();
            (
                Ok(None),
                catch_unwind(AssertUnwindSafe(move || {
                    self.run_passes(lib, db, nl, constraints, fault.as_deref())
                }))
                .map_err(milo_par::Panic),
            )
        };
        let unwind = |arm: &str, p: milo_par::Panic| -> MiloError {
            if isolate {
                MiloError::PassPanicked {
                    pass: arm.to_owned(),
                    design: nl.name.clone(),
                    payload: p.message(),
                    recovery: RecoveryAction::Aborted,
                }
            } else {
                p.resume()
            }
        };
        let (mut result, mut report) = main_res.map_err(|p| unwind("flow", p))??;
        result.baseline = match baseline_res.map_err(|p| unwind("baseline", p))? {
            Some(r) => r?,
            None => DesignStats::default(),
        };
        report.total_wall = started.elapsed();
        Ok(FlowOutput { result, report })
    }

    /// The main arm: every pass in order, then the final electric check.
    fn run_passes(
        &mut self,
        lib: &TechLibrary,
        db: &mut DesignDb,
        nl: &Netlist,
        constraints: &Constraints,
        fault: Option<&FaultInjector>,
    ) -> Result<(SynthesisResult, FlowReport), MiloError> {
        let mut ctx = FlowContext {
            entry: nl,
            constraints,
            lib,
            db,
            work: nl.clone(),
            top_name: None,
            mapped: false,
            critic: None,
            levels: Vec::new(),
            timing: None,
            buffers_inserted: 0,
        };
        let mut report = FlowReport {
            design: nl.name.clone(),
            ..FlowReport::default()
        };
        if let Some(obs) = self.observer.as_mut() {
            obs(&FlowEvent::FlowStarted {
                design: &nl.name,
                passes: self.slots.len(),
            });
        }
        // One pass's `after` statistics double as the next pass's
        // `before` — the netlist is untouched at the boundary (and by
        // skipped passes), so sampling once per transition suffices. A
        // recovered failure invalidates the carried sample.
        let mut carried: Option<DesignStats> = None;
        let design = nl.name.clone();
        let opts = self.options;
        // One span per flow and one per pass (docs/OBSERVABILITY.md).
        // Names are formatted only when tracing is on, so the disabled
        // path stays allocation-free.
        let _flow_span = milo_trace::enabled().then(|| milo_trace::span(&format!("flow:{design}")));
        for (index, slot) in self.slots.iter_mut().enumerate() {
            let name = slot.pass.name().to_owned();
            if let Some(obs) = self.observer.as_mut() {
                obs(&FlowEvent::PassStarted { index, name: &name });
            }
            let _pass_span =
                milo_trace::enabled().then(|| milo_trace::span(&format!("pass:{name}")));
            let skipped = slot.skip.as_ref().is_some_and(|pred| pred(&ctx));
            let before = if opts.sample_stats && !skipped {
                carried.take().or_else(|| ctx.sample_stats())
            } else {
                None
            };
            let policy = slot.policy.unwrap_or_default();
            // The checkpoint is only for restoring after a recovered
            // failure; the default abort-on-failure pays nothing.
            let checkpoint = if !skipped
                && (policy.on_failure != FailureAction::Abort || opts.validate_each_pass)
            {
                Some(Checkpoint::capture(&ctx))
            } else {
                None
            };
            let pass_started = Instant::now();
            let run_res: Result<PassReport, MiloError> = if skipped {
                Ok(PassReport {
                    skipped: true,
                    outcome: PassOutcome::Skipped,
                    ..PassReport::default()
                })
            } else {
                let inject_panic = fault.is_some_and(|f| f.fires(FaultKind::Panic, &name, &design));
                if inject_panic && milo_trace::enabled() {
                    milo_trace::instant_with("fault.inject", &format!("panic@{name}/{design}"));
                }
                let exec = |pass: &mut Box<dyn Pass>, ctx: &mut FlowContext<'_>| {
                    if inject_panic {
                        panic!("injected fault: panic@{name}");
                    }
                    pass.run(ctx)
                };
                let ran = if opts.isolate_panics {
                    catch_unwind(AssertUnwindSafe(|| exec(&mut slot.pass, &mut ctx)))
                        .unwrap_or_else(|payload| {
                            Err(MiloError::PassPanicked {
                                pass: name.clone(),
                                design: design.clone(),
                                payload: milo_par::Panic(payload).message(),
                                recovery: RecoveryAction::Aborted,
                            })
                        })
                } else {
                    exec(&mut slot.pass, &mut ctx)
                };
                let wall = pass_started.elapsed();
                ran.and_then(|pr| {
                    if fault.is_some_and(|f| f.fires(FaultKind::Corrupt, &name, &design)) {
                        if milo_trace::enabled() {
                            milo_trace::instant_with(
                                "fault.inject",
                                &format!("corrupt@{name}/{design}"),
                            );
                        }
                        FaultInjector::corrupt(&mut ctx.work);
                    }
                    let budget_hit = policy.budget.exceeded(pr.rules_applied, wall).or_else(|| {
                        fault
                            .is_some_and(|f| f.fires(FaultKind::Budget, &name, &design))
                            .then(|| {
                                if milo_trace::enabled() {
                                    milo_trace::instant_with(
                                        "fault.inject",
                                        &format!("budget@{name}/{design}"),
                                    );
                                }
                                "injected budget exhaustion".to_owned()
                            })
                    });
                    if let Some(detail) = budget_hit {
                        return Err(MiloError::BudgetExceeded {
                            pass: name.clone(),
                            design: design.clone(),
                            detail,
                            recovery: RecoveryAction::Aborted,
                        });
                    }
                    if opts.validate_each_pass {
                        let fatal = fatal_violations(&ctx.work);
                        if !fatal.is_empty() {
                            return Err(MiloError::ValidationFailed {
                                pass: name.clone(),
                                design: design.clone(),
                                violations: fatal,
                                recovery: RecoveryAction::Aborted,
                            });
                        }
                    }
                    Ok(pr)
                })
            };
            let mut pr = match run_res {
                Ok(pr) => pr,
                Err(e) => {
                    // Budget exhaustion leaves a valid netlist that is
                    // merely over budget — SkipPass keeps it. Every
                    // other failure leaves untrusted state: restore.
                    let keep_partial = matches!(e, MiloError::BudgetExceeded { .. })
                        && policy.on_failure == FailureAction::SkipPass;
                    let (outcome, recovery) = match policy.on_failure {
                        FailureAction::Abort => {
                            return Err(e.with_recovery(RecoveryAction::Aborted));
                        }
                        FailureAction::SkipPass => {
                            (PassOutcome::FailedSkipped, RecoveryAction::SkippedPass)
                        }
                        FailureAction::RollbackAndContinue => {
                            (PassOutcome::RolledBack, RecoveryAction::RolledBack)
                        }
                    };
                    if !keep_partial {
                        if let Some(cp) = checkpoint {
                            cp.restore(&mut ctx);
                        }
                    }
                    report.degraded = true;
                    carried = None;
                    PassReport {
                        outcome,
                        error: Some(e.with_recovery(recovery).to_string()),
                        ..PassReport::default()
                    }
                }
            };
            pr.name = name;
            pr.wall = pass_started.elapsed();
            pr.before = before;
            pr.after = if opts.sample_stats && pr.outcome == PassOutcome::Completed {
                carried = ctx.sample_stats();
                carried
            } else {
                None
            };
            if let Some(obs) = self.observer.as_mut() {
                obs(&FlowEvent::PassFinished { index, report: &pr });
            }
            report.passes.push(pr);
        }

        // Corruption gate: whatever the passes (or an injected fault)
        // did, a structurally corrupt netlist must not silently flow
        // into mapping / timing — surface it as a structured error.
        let fatal = fatal_violations(&ctx.work);
        if !fatal.is_empty() {
            return Err(MiloError::DesignCorrupt {
                design,
                detail: fatal
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            });
        }

        // Final electric check (the fixed epilogue): whatever passes ran
        // or were skipped, the output is a mapped netlist with legal
        // fanout, no dead nets, and a timing report.
        ctx.ensure_mapped()?;
        let buffers2 = enforce_fanout(&mut ctx.work, lib)?;
        ctx.work.sweep_dead_nets();
        let violations: Vec<Violation> = validate(&ctx.work, true)
            .into_iter()
            .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
            .collect();
        let stats = statistics(&ctx.work)?;
        let timing = match ctx.timing {
            Some(t) => t,
            None => {
                let d = milo_timing::analyze(&ctx.work)
                    .map(|s| s.worst_delay())
                    .unwrap_or(0.0);
                TimingReport {
                    met: true,
                    initial_delay: d,
                    final_delay: d,
                    applied: Vec::new(),
                }
            }
        };
        let result = SynthesisResult {
            netlist: ctx.work,
            stats,
            baseline: DesignStats::default(), // overlapped arm fills this in
            critic: ctx.critic,
            levels: ctx.levels,
            timing,
            violations,
            buffers_inserted: ctx.buffers_inserted + buffers2,
        };
        report.result_hash = Some(milo_netlist::structural_hash(&result.netlist));
        Ok((result, report))
    }
}

// ---------------------------------------------------------------------
// The five paper passes
// ---------------------------------------------------------------------

/// Stage 1: the microarchitecture critic (§5) — structural rewrites plus
/// the compile→map feedback loop, on micro-level entries only.
pub struct MicroCritic;

impl Pass for MicroCritic {
    fn name(&self) -> &str {
        "micro-critic"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let has_micro = ctx.work.component_ids().any(|id| {
            matches!(
                ctx.work.component(id).map(|c| &c.kind),
                Ok(milo_netlist::ComponentKind::Micro(_))
            )
        });
        if !has_micro {
            return Ok(PassReport::noted(0, "gate-level entry"));
        }
        let critic = milo_microarch::optimize(
            &mut ctx.work,
            ctx.db,
            ctx.lib,
            ctx.constraints.tightest_delay(),
        )?;
        let applied = critic.fired.len() + critic.cla_upgrades + critic.ripple_downgrades;
        let note = format!("fired {:?}", critic.fired);
        ctx.critic = Some(critic);
        Ok(PassReport::noted(applied, note))
    }
}

/// Stage 2a: the parameterized logic compilers (§6.1) — expands micro
/// components into generic macros, caching designs in the database.
pub struct Compile;

impl Pass for Compile {
    fn name(&self) -> &str {
        "compile"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let before = ctx.db.len();
        ctx.ensure_compiled()?;
        let added = ctx.db.len().saturating_sub(before);
        Ok(PassReport::noted(
            added,
            format!("{added} designs compiled into the database"),
        ))
    }
}

/// Stage 2b: hierarchical bottom-up logic optimization (Fig. 18) —
/// maps every level and runs the rule engine, leaves `work` mapped.
pub struct BottomUpLogic;

impl Pass for BottomUpLogic {
    fn name(&self) -> &str {
        "bottom-up-logic"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        let top = ctx.sync_top()?;
        let (mapped, levels) = milo_opt::optimize_bottom_up(&top, ctx.db, ctx.lib)?;
        let fired: usize = levels.iter().map(|l| l.fired).sum();
        let note = format!("{} levels", levels.len());
        ctx.work = mapped;
        ctx.mapped = true;
        ctx.levels = levels;
        Ok(PassReport::noted(fired, note))
    }
}

/// Stage 3: the electric critic (§4.2) — fanout repair by buffer
/// insertion.
pub struct FanoutRepair;

impl Pass for FanoutRepair {
    fn name(&self) -> &str {
        "fanout-repair"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.ensure_mapped()?;
        let buffers = enforce_fanout(&mut ctx.work, ctx.lib)?;
        ctx.buffers_inserted += buffers;
        Ok(PassReport::noted(
            buffers,
            format!("{buffers} buffers inserted"),
        ))
    }
}

/// Stages 4+: the time optimizer (per-path constraints, §6's path-delay
/// parameters), then the area/power optimizer on the remaining slack.
pub struct TimingArea;

impl Pass for TimingArea {
    fn name(&self) -> &str {
        "timing-area"
    }

    fn run(&mut self, ctx: &mut FlowContext<'_>) -> Result<PassReport, MiloError> {
        ctx.ensure_mapped()?;
        let hash = milo_rules::HashRuleTable::cached(&milo_rules::LibraryRef {
            cells: ctx.lib.cells(),
        });
        let timing = if ctx.constraints.has_timing() {
            let c = ctx.constraints.clone();
            milo_opt::optimize_timing_paths(
                &mut ctx.work,
                ctx.lib,
                &hash,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            )
        } else {
            let d = milo_timing::analyze(&ctx.work)
                .map(|s| s.worst_delay())
                .unwrap_or(0.0);
            TimingReport {
                met: true,
                initial_delay: d,
                final_delay: d,
                applied: Vec::new(),
            }
        };
        let area_steps = {
            let c = ctx.constraints.clone();
            milo_opt::optimize_area_paths(
                &mut ctx.work,
                ctx.lib,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            )
        };
        let applied = timing.applied.len() + area_steps;
        let note = format!(
            "timing {}, {} strategies, {} area steps",
            if timing.met { "met" } else { "missed" },
            timing.applied.len(),
            area_steps
        );
        ctx.timing = Some(timing);
        Ok(PassReport::noted(applied, note))
    }
}
