//! The MILO pipeline (Fig. 11): microarchitecture critic → logic
//! compilers → technology mapper → logic optimizer, with the statistics
//! generator feeding back at every stage.

use crate::constraints::Constraints;
use milo_compilers::expand_micro_components;
use milo_microarch::{CriticReport, FeedbackError};
use milo_netlist::{validate, DesignDb, Netlist, Violation};
use milo_opt::{optimize_bottom_up, LevelReport, TimingReport};
use milo_techmap::{enforce_fanout, map_netlist, TechLibrary};
use milo_timing::{statistics, DesignStats};
use std::fmt;

/// Errors from the synthesis pipeline.
#[derive(Debug)]
pub enum MiloError {
    /// Microarchitecture critic / feedback failure.
    Feedback(FeedbackError),
    /// Hierarchical optimization failure.
    Hierarchy(milo_opt::HierarchyError),
    /// Mapping failure.
    Map(milo_techmap::MapError),
    /// Netlist failure.
    Netlist(milo_netlist::NetlistError),
    /// Compilation failure.
    Compile(String),
}

impl fmt::Display for MiloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiloError::Feedback(e) => write!(f, "feedback: {e}"),
            MiloError::Hierarchy(e) => write!(f, "hierarchy: {e}"),
            MiloError::Map(e) => write!(f, "map: {e}"),
            MiloError::Netlist(e) => write!(f, "netlist: {e}"),
            MiloError::Compile(e) => write!(f, "compile: {e}"),
        }
    }
}

impl std::error::Error for MiloError {}

impl From<FeedbackError> for MiloError {
    fn from(e: FeedbackError) -> Self {
        MiloError::Feedback(e)
    }
}
impl From<milo_opt::HierarchyError> for MiloError {
    fn from(e: milo_opt::HierarchyError) -> Self {
        MiloError::Hierarchy(e)
    }
}
impl From<milo_techmap::MapError> for MiloError {
    fn from(e: milo_techmap::MapError) -> Self {
        MiloError::Map(e)
    }
}
impl From<milo_netlist::NetlistError> for MiloError {
    fn from(e: milo_netlist::NetlistError) -> Self {
        MiloError::Netlist(e)
    }
}

/// Everything a synthesis run produces.
#[derive(Debug)]
pub struct SynthesisResult {
    /// The optimized technology-specific netlist.
    pub netlist: Netlist,
    /// Statistics of the optimized design.
    pub stats: DesignStats,
    /// Statistics of the unoptimized direct mapping (the comparison
    /// baseline of Fig. 19).
    pub baseline: DesignStats,
    /// Microarchitecture critic report (None when the input had no
    /// microarchitecture components).
    pub critic: Option<CriticReport>,
    /// Per-level hierarchy optimization reports.
    pub levels: Vec<LevelReport>,
    /// Timing-optimizer report.
    pub timing: TimingReport,
    /// Electric violations remaining after repair (should be only
    /// benign dangling outputs).
    pub violations: Vec<Violation>,
    /// Buffers inserted by the electric critic.
    pub buffers_inserted: usize,
}

impl SynthesisResult {
    /// Delay improvement over the baseline in percent.
    pub fn delay_improvement_pct(&self) -> f64 {
        self.stats.delay_improvement_pct(&self.baseline)
    }

    /// Area improvement over the baseline in percent.
    pub fn area_improvement_pct(&self) -> f64 {
        self.stats.area_improvement_pct(&self.baseline)
    }
}

/// The MILO system: a technology library plus the design database the
/// logic compilers populate.
///
/// # Examples
///
/// ```
/// use milo_core::{Constraints, Milo};
/// use milo_techmap::ecl_library;
/// use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist, PinDir};
///
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_net("a");
/// let y = nl.add_net("y");
/// let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
/// nl.connect_named(g, "A0", a)?;
/// nl.connect_named(g, "Y", y)?;
/// nl.add_port("a", PinDir::In, a);
/// nl.add_port("y", PinDir::Out, y);
///
/// let mut milo = Milo::new(ecl_library());
/// let result = milo.synthesize(&nl, &Constraints::none())?;
/// assert_eq!(result.stats.cells, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Milo {
    lib: TechLibrary,
    db: DesignDb,
}

impl Milo {
    /// Creates a MILO instance targeting `lib`.
    pub fn new(lib: TechLibrary) -> Self {
        Self {
            lib,
            db: DesignDb::new(),
        }
    }

    /// The target library.
    pub fn library(&self) -> &TechLibrary {
        &self.lib
    }

    /// The design database (compiled designs accumulate across runs, as
    /// in the paper's compiler cache).
    pub fn database(&self) -> &DesignDb {
        &self.db
    }

    /// The "human designer" reference flow: compile and map the entry
    /// as-is, with no optimization. Used as the comparison baseline.
    ///
    /// # Errors
    ///
    /// Propagates compiler / mapping errors.
    pub fn elaborate_unoptimized(&mut self, nl: &Netlist) -> Result<Netlist, MiloError> {
        let mut work = nl.clone();
        work.name = format!("{}__base", nl.name);
        expand_micro_components(&mut work, &mut self.db)
            .map_err(|e| MiloError::Compile(e.to_string()))?;
        let name = self.db.insert(work);
        let flat = self.db.flatten(&name)?;
        let mapped = map_netlist(&flat, &self.lib)?;
        Ok(mapped)
    }

    /// Runs the full MILO pipeline on a microarchitecture- or gate-level
    /// netlist.
    ///
    /// # Errors
    ///
    /// Propagates stage failures.
    pub fn synthesize(
        &mut self,
        nl: &Netlist,
        constraints: &Constraints,
    ) -> Result<SynthesisResult, MiloError> {
        // The baseline ("human designer") elaboration is independent of
        // the optimizing flow, so it runs on a database snapshot in a
        // parallel fork while the critic/compile/bottom-up pipeline runs
        // here. Joining preserves deterministic results — both arms are
        // pure functions of their inputs.
        let baseline_db = self.db.clone();
        let baseline_lib = self.lib.clone();
        let (baseline_res, main_res) = milo_par::join(
            move || -> Result<DesignStats, MiloError> {
                let mut side = Milo {
                    lib: baseline_lib,
                    db: baseline_db,
                };
                let baseline_nl = side.elaborate_unoptimized(nl)?;
                Ok(statistics(&baseline_nl)?)
            },
            || -> Result<_, MiloError> {
                // 1. Microarchitecture critic (only meaningful when micro
                //    components are present).
                let mut work = nl.clone();
                let has_micro = work.component_ids().any(|id| {
                    matches!(
                        work.component(id).map(|c| &c.kind),
                        Ok(milo_netlist::ComponentKind::Micro(_))
                    )
                });
                let critic = if has_micro {
                    Some(milo_microarch::optimize(
                        &mut work,
                        &mut self.db,
                        &self.lib,
                        constraints.tightest_delay(),
                    )?)
                } else {
                    None
                };

                // 2. Logic compilers + hierarchical bottom-up logic
                //    optimization (Fig. 18).
                let mut compiled = work.clone();
                compiled.name = format!("{}__milo", nl.name);
                expand_micro_components(&mut compiled, &mut self.db)
                    .map_err(|e| MiloError::Compile(e.to_string()))?;
                let top_name = self.db.insert(compiled);
                let (mapped, levels) = optimize_bottom_up(&top_name, &mut self.db, &self.lib)?;
                Ok((mapped, levels, critic))
            },
        );
        let baseline = baseline_res?;
        let (mut mapped, levels, critic) = main_res?;

        // 3. Electric critic: fanout repair.
        let buffers_inserted = enforce_fanout(&mut mapped, &self.lib)?;

        // 4. Time optimizer (per-path constraints, §6's path-delay
        //    parameters), then area/power on the slack.
        let hash = milo_rules::HashRuleTable::cached(&milo_rules::LibraryRef {
            cells: self.lib.cells(),
        });
        let timing = if constraints.has_timing() {
            let c = constraints.clone();
            milo_opt::optimize_timing_paths(
                &mut mapped,
                &self.lib,
                &hash,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            )
        } else {
            let d = milo_timing::analyze(&mapped)
                .map(|s| s.worst_delay())
                .unwrap_or(0.0);
            milo_opt::TimingReport {
                met: true,
                initial_delay: d,
                final_delay: d,
                applied: Vec::new(),
            }
        };
        {
            let c = constraints.clone();
            milo_opt::optimize_area_paths(
                &mut mapped,
                &self.lib,
                &move |e| match e {
                    milo_timing::Endpoint::Port(p) => c.required_for(p),
                    milo_timing::Endpoint::SeqInput(_) => c.max_delay,
                },
                200,
            );
        }

        // 5. Final electric check.
        let buffers2 = enforce_fanout(&mut mapped, &self.lib)?;
        mapped.sweep_dead_nets();
        let violations: Vec<Violation> = validate(&mapped, true)
            .into_iter()
            .filter(|v| !matches!(v, Violation::DanglingOutput { .. }))
            .collect();
        let stats = statistics(&mapped)?;
        Ok(SynthesisResult {
            netlist: mapped,
            stats,
            baseline,
            critic,
            levels,
            timing,
            violations,
            buffers_inserted: buffers_inserted + buffers2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_seq_equivalence;
    use milo_netlist::{
        ArithOps, CarryMode, ComponentKind, ControlSet, MicroComponent, PinDir, RegFunctions,
        Trigger,
    };
    use milo_techmap::ecl_library;

    /// A small micro design: adder + register feedback (Fig. 14 shape).
    fn counterish() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let au = nl.add_component(
            "add",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits: 4,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let reg = nl.add_component(
            "reg",
            ComponentKind::Micro(MicroComponent::Register {
                bits: 4,
                trigger: Trigger::EdgeTriggered,
                funcs: RegFunctions::LOAD,
                ctrl: ControlSet::RESET,
            }),
        );
        let vdd = nl.add_component(
            "vdd",
            ComponentKind::Generic(milo_netlist::GenericMacro::Vdd),
        );
        let vss = nl.add_component(
            "vss",
            ComponentKind::Generic(milo_netlist::GenericMacro::Vss),
        );
        let one = nl.add_net("one");
        let zero = nl.add_net("zero");
        nl.connect_named(vdd, "Y", one).unwrap();
        nl.connect_named(vss, "Y", zero).unwrap();
        for i in 0..4 {
            let q = nl.add_net(format!("q{i}"));
            nl.connect_named(reg, &format!("Q{i}"), q).unwrap();
            nl.connect_named(au, &format!("A{i}"), q).unwrap();
            nl.add_port(format!("q{i}"), PinDir::Out, q);
            let s = nl.add_net(format!("s{i}"));
            nl.connect_named(au, &format!("S{i}"), s).unwrap();
            nl.connect_named(reg, &format!("D{i}"), s).unwrap();
            nl.connect_named(au, &format!("B{i}"), if i == 0 { one } else { zero })
                .unwrap();
        }
        nl.connect_named(au, "CIN", zero).unwrap();
        nl.connect_named(reg, "F0", one).unwrap();
        let rst = nl.add_net("rst");
        let clk = nl.add_net("clk");
        nl.connect_named(reg, "RST", rst).unwrap();
        nl.connect_named(reg, "CLK", clk).unwrap();
        nl.add_port("rst", PinDir::In, rst);
        nl.add_port("clk", PinDir::In, clk);
        nl
    }

    #[test]
    fn full_pipeline_improves_counterish_design() {
        let mut milo = Milo::new(ecl_library());
        let entry = counterish();
        let result = milo.synthesize(&entry, &Constraints::none()).unwrap();
        assert!(
            result
                .critic
                .as_ref()
                .unwrap()
                .fired
                .contains(&"adder-register-to-counter"),
            "{:?}",
            result.critic
        );
        assert!(result.stats.area < result.baseline.area, "{result:?}");
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        // Function preserved vs the unoptimized elaboration.
        let baseline_nl = milo.elaborate_unoptimized(&entry).unwrap();
        check_seq_equivalence(&baseline_nl, &result.netlist, 60, 17).unwrap();
        assert!(result.area_improvement_pct() > 0.0);
    }

    #[test]
    fn timing_constraint_drives_cla() {
        let mut milo = Milo::new(ecl_library());
        let mut nl = Netlist::new("addpath");
        let au = nl.add_component(
            "au",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits: 8,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let pins: Vec<(String, PinDir)> = nl
            .component(au)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl.add_net(pin.clone());
            nl.connect_named(au, &pin, net).unwrap();
            nl.add_port(pin, dir, net);
        }
        let loose = milo.synthesize(&nl, &Constraints::none()).unwrap();
        let tight = milo
            .synthesize(
                &nl,
                &Constraints::none().with_max_delay(loose.stats.delay * 0.7),
            )
            .unwrap();
        assert!(tight.stats.delay < loose.stats.delay, "{tight:?}");
        assert_eq!(tight.critic.as_ref().unwrap().met_timing, Some(true));
    }
}
