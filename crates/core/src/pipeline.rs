//! The MILO pipeline (Fig. 11): microarchitecture critic → logic
//! compilers → technology mapper → logic optimizer, with the statistics
//! generator feeding back at every stage.
//!
//! Since the Flow/pass redesign the stages live in [`crate::flow`] as
//! individual [`crate::Pass`] objects; [`Milo::synthesize`] is a thin
//! shim over the default [`Flow`](crate::Flow), and
//! [`Milo::synthesize_batch`] fans independent designs across all cores.

use crate::constraints::Constraints;
use crate::fault::FaultInjector;
use crate::flow::{json_f64, json_string, Flow, FlowOutput};
use milo_compilers::expand_micro_components;
use milo_microarch::{CriticReport, FeedbackError};
use milo_netlist::{DesignDb, Netlist, Violation};
use milo_opt::{LevelReport, TimingReport};
use milo_techmap::{map_netlist, TechLibrary};
use milo_timing::{statistics, DesignStats};
use std::fmt;
use std::sync::Arc;

/// How the flow driver reacted to a recoverable failure — carried
/// inside the structured [`MiloError`] variants so callers (and the
/// JSON report) can tell a hard abort from a degraded-but-continued
/// run or a retried batch arm.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryAction {
    /// The flow stopped and surfaced the error.
    Aborted,
    /// The failing pass was skipped over and the flow continued.
    SkippedPass,
    /// The pre-pass checkpoint was restored and the flow continued.
    RolledBack,
    /// The batch arm was retried once and still failed.
    Retried,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryAction::Aborted => "aborted",
            RecoveryAction::SkippedPass => "skipped pass",
            RecoveryAction::RolledBack => "rolled back",
            RecoveryAction::Retried => "retried",
        })
    }
}

/// Errors from the synthesis pipeline.
#[derive(Debug)]
pub enum MiloError {
    /// Microarchitecture critic / feedback failure.
    Feedback(FeedbackError),
    /// Hierarchical optimization failure.
    Hierarchy(milo_opt::HierarchyError),
    /// Mapping failure.
    Map(milo_techmap::MapError),
    /// Netlist failure.
    Netlist(milo_netlist::NetlistError),
    /// Compilation failure.
    Compile(String),
    /// A pass (or batch arm) panicked; the unwind was caught at the
    /// pass boundary and converted into this structured error.
    PassPanicked {
        /// The panicking pass (or `"batch-arm"` / `"baseline"` /
        /// `"flow"` for panics outside any single pass).
        pass: String,
        /// The entry design being synthesized.
        design: String,
        /// The panic message (best-effort string extraction).
        payload: String,
        /// What the driver did about it.
        recovery: RecoveryAction,
    },
    /// A pass exceeded its [`crate::RewriteBudget`].
    BudgetExceeded {
        /// The over-budget pass.
        pass: String,
        /// The entry design being synthesized.
        design: String,
        /// Which limit was exceeded, and by how much.
        detail: String,
        /// What the driver did about it.
        recovery: RecoveryAction,
    },
    /// A post-pass validation checkpoint found fatal structural
    /// violations ([`crate::FlowOptions::validate_each_pass`]).
    ValidationFailed {
        /// The pass after which validation failed.
        pass: String,
        /// The entry design being synthesized.
        design: String,
        /// The fatal violations found.
        violations: Vec<Violation>,
        /// What the driver did about it.
        recovery: RecoveryAction,
    },
    /// The work netlist reached the end of the pass list structurally
    /// corrupt (multi-driven or undriven nets) — nothing downstream can
    /// be trusted, so the flow refuses to map or report it.
    DesignCorrupt {
        /// The entry design being synthesized.
        design: String,
        /// The fatal violations, rendered.
        detail: String,
    },
}

impl MiloError {
    /// Whether this error is a caught panic (the only class the batch
    /// driver retries — everything else is deterministic).
    pub fn is_panic(&self) -> bool {
        matches!(self, MiloError::PassPanicked { .. })
    }

    /// Stamps the recovery action onto the structured variants
    /// (no-op for the plain stage errors, which always abort).
    #[must_use]
    pub(crate) fn with_recovery(mut self, action: RecoveryAction) -> Self {
        match &mut self {
            MiloError::PassPanicked { recovery, .. }
            | MiloError::BudgetExceeded { recovery, .. }
            | MiloError::ValidationFailed { recovery, .. } => *recovery = action,
            _ => {}
        }
        self
    }
}

impl fmt::Display for MiloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiloError::Feedback(e) => write!(f, "feedback: {e}"),
            MiloError::Hierarchy(e) => write!(f, "hierarchy: {e}"),
            MiloError::Map(e) => write!(f, "map: {e}"),
            MiloError::Netlist(e) => write!(f, "netlist: {e}"),
            MiloError::Compile(e) => write!(f, "compile: {e}"),
            MiloError::PassPanicked {
                pass,
                design,
                payload,
                recovery,
            } => write!(
                f,
                "pass {pass:?} panicked on design {design:?} ({recovery}): {payload}"
            ),
            MiloError::BudgetExceeded {
                pass,
                design,
                detail,
                recovery,
            } => write!(
                f,
                "pass {pass:?} exceeded its budget on design {design:?} ({recovery}): {detail}"
            ),
            MiloError::ValidationFailed {
                pass,
                design,
                violations,
                recovery,
            } => {
                write!(
                    f,
                    "validation after pass {pass:?} on design {design:?} ({recovery}): "
                )?;
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            MiloError::DesignCorrupt { design, detail } => {
                write!(f, "design {design:?} is structurally corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for MiloError {}

impl From<FeedbackError> for MiloError {
    fn from(e: FeedbackError) -> Self {
        MiloError::Feedback(e)
    }
}
impl From<milo_opt::HierarchyError> for MiloError {
    fn from(e: milo_opt::HierarchyError) -> Self {
        MiloError::Hierarchy(e)
    }
}
impl From<milo_techmap::MapError> for MiloError {
    fn from(e: milo_techmap::MapError) -> Self {
        MiloError::Map(e)
    }
}
impl From<milo_netlist::NetlistError> for MiloError {
    fn from(e: milo_netlist::NetlistError) -> Self {
        MiloError::Netlist(e)
    }
}

/// Everything a synthesis run produces.
#[derive(Debug)]
pub struct SynthesisResult {
    /// The optimized technology-specific netlist.
    pub netlist: Netlist,
    /// Statistics of the optimized design.
    pub stats: DesignStats,
    /// Statistics of the unoptimized direct mapping (the comparison
    /// baseline of Fig. 19).
    pub baseline: DesignStats,
    /// Microarchitecture critic report (None when the input had no
    /// microarchitecture components).
    pub critic: Option<CriticReport>,
    /// Per-level hierarchy optimization reports.
    pub levels: Vec<LevelReport>,
    /// Timing-optimizer report.
    pub timing: TimingReport,
    /// Electric violations remaining after repair (should be only
    /// benign dangling outputs).
    pub violations: Vec<Violation>,
    /// Buffers inserted by the electric critic.
    pub buffers_inserted: usize,
}

impl SynthesisResult {
    /// Delay improvement over the baseline in percent.
    pub fn delay_improvement_pct(&self) -> f64 {
        self.stats.delay_improvement_pct(&self.baseline)
    }

    /// Area improvement over the baseline in percent.
    pub fn area_improvement_pct(&self) -> f64 {
        self.stats.area_improvement_pct(&self.baseline)
    }

    /// Hand-rolled JSON summary (the build environment has no serde):
    /// design name, optimized and baseline statistics, improvements,
    /// critic and timing summaries, level reports, and electric counts.
    pub fn to_json(&self) -> String {
        let stats = |s: &DesignStats| {
            format!(
                "{{\"cells\": {}, \"area\": {}, \"delay\": {}, \"power\": {}}}",
                s.cells,
                json_f64(s.area),
                json_f64(s.delay),
                json_f64(s.power)
            )
        };
        let critic = match &self.critic {
            None => "null".to_owned(),
            Some(c) => {
                let fired: Vec<String> = c.fired.iter().map(|f| json_string(f)).collect();
                format!(
                    "{{\"fired\": [{}], \"cla_upgrades\": {}, \"ripple_downgrades\": {}, \
                     \"met_timing\": {}}}",
                    fired.join(", "),
                    c.cla_upgrades,
                    c.ripple_downgrades,
                    match c.met_timing {
                        Some(m) => m.to_string(),
                        None => "null".to_owned(),
                    }
                )
            }
        };
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"design\": {}, \"fired\": {}, \"before\": {}, \"after\": {}}}",
                    json_string(&l.design),
                    l.fired,
                    stats(&l.before),
                    stats(&l.after)
                )
            })
            .collect();
        format!(
            "{{\"design\": {}, \"stats\": {}, \"baseline\": {}, \
             \"delay_improvement_pct\": {}, \"area_improvement_pct\": {}, \
             \"critic\": {}, \"levels\": [{}], \
             \"timing\": {{\"met\": {}, \"initial_delay\": {}, \"final_delay\": {}, \
             \"strategies_applied\": {}}}, \
             \"violations\": {}, \"buffers_inserted\": {}}}",
            json_string(&self.netlist.name),
            stats(&self.stats),
            stats(&self.baseline),
            json_f64(self.delay_improvement_pct()),
            json_f64(self.area_improvement_pct()),
            critic,
            levels.join(", "),
            self.timing.met,
            json_f64(self.timing.initial_delay),
            json_f64(self.timing.final_delay),
            self.timing.applied.len(),
            self.violations.len(),
            self.buffers_inserted,
        )
    }
}

/// The MILO system: a technology library plus the design database the
/// logic compilers populate.
///
/// # Examples
///
/// ```
/// use milo_core::{Constraints, Milo};
/// use milo_techmap::ecl_library;
/// use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist, PinDir};
///
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_net("a");
/// let y = nl.add_net("y");
/// let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
/// nl.connect_named(g, "A0", a)?;
/// nl.connect_named(g, "Y", y)?;
/// nl.add_port("a", PinDir::In, a);
/// nl.add_port("y", PinDir::Out, y);
///
/// let mut milo = Milo::new(ecl_library());
/// let result = milo.synthesize(&nl, &Constraints::none())?;
/// assert_eq!(result.stats.cells, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Milo {
    pub(crate) lib: TechLibrary,
    pub(crate) db: DesignDb,
    pub(crate) fault: Option<Arc<FaultInjector>>,
}

/// The baseline ("human designer") elaboration as a pure function of a
/// database snapshot: [`Milo::elaborate_unoptimized`] on a throwaway
/// side instance. The flow driver runs this on a parallel arm; the
/// snapshot shares its netlists with the caller's database through
/// `Arc`, so forking costs a name-table copy, not a deep clone (and the
/// library clone is a reference bump).
pub(crate) fn elaborate_baseline(
    db: DesignDb,
    lib: &TechLibrary,
    nl: &Netlist,
) -> Result<DesignStats, MiloError> {
    let mut side = Milo {
        lib: lib.clone(),
        db,
        fault: None,
    };
    let mapped = side.elaborate_unoptimized(nl)?;
    Ok(statistics(&mapped)?)
}

impl Milo {
    /// Creates a MILO instance targeting `lib`.
    pub fn new(lib: TechLibrary) -> Self {
        Self {
            lib,
            db: DesignDb::new(),
            fault: None,
        }
    }

    /// Creates a MILO instance seeded with an existing design database.
    /// This is how a long-lived service rehydrates a worker: the shared
    /// compiler cache is assembled from storage shards, handed to a
    /// fresh `Milo`, and recovered with [`Milo::into_database`] after
    /// the run to merge newly compiled designs back.
    pub fn with_database(lib: TechLibrary, db: DesignDb) -> Self {
        Self {
            lib,
            db,
            fault: None,
        }
    }

    /// Consumes the instance, yielding its design database (every
    /// design compiled across all runs, plus whatever it was seeded
    /// with).
    pub fn into_database(self) -> DesignDb {
        self.db
    }

    /// Arms a fault injector for every flow run against this instance
    /// (test harness; see [`FaultInjector`]). Flows with their own
    /// injector take precedence; `MILO_FAULT_INJECT` is the fallback.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.fault = Some(injector);
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.clone()
    }

    /// The target library.
    pub fn library(&self) -> &TechLibrary {
        &self.lib
    }

    /// The design database (compiled designs accumulate across runs, as
    /// in the paper's compiler cache).
    pub fn database(&self) -> &DesignDb {
        &self.db
    }

    /// Library and database views for the flow driver.
    pub(crate) fn parts_mut(&mut self) -> (&TechLibrary, &mut DesignDb) {
        (&self.lib, &mut self.db)
    }

    /// The "human designer" reference flow: compile and map the entry
    /// as-is, with no optimization. Used as the comparison baseline.
    ///
    /// # Errors
    ///
    /// Propagates compiler / mapping errors.
    pub fn elaborate_unoptimized(&mut self, nl: &Netlist) -> Result<Netlist, MiloError> {
        let mut work = nl.clone();
        work.name = format!("{}__base", nl.name);
        expand_micro_components(&mut work, &mut self.db)
            .map_err(|e| MiloError::Compile(e.to_string()))?;
        let name = self.db.insert(work);
        let flat = self.db.flatten(&name)?;
        let mapped = map_netlist(&flat, &self.lib)?;
        Ok(mapped)
    }

    /// The default paper flow: microarchitecture critic → logic
    /// compilers → bottom-up logic optimization → electric critic →
    /// time/area optimizers. Customize it with [`Flow`]'s builder
    /// methods before [`Flow::run`]ning it against this instance.
    pub fn flow(&self) -> Flow {
        Flow::standard()
    }

    /// Runs the full MILO pipeline on a microarchitecture- or gate-level
    /// netlist.
    ///
    /// This is a thin shim over the default [`Flow`] (per-pass
    /// statistics sampling off, since the report is discarded); it
    /// produces exactly the same result the flow API does.
    ///
    /// # Errors
    ///
    /// Propagates stage failures.
    pub fn synthesize(
        &mut self,
        nl: &Netlist,
        constraints: &Constraints,
    ) -> Result<SynthesisResult, MiloError> {
        let mut flow = Flow::standard();
        flow.sample_stats(false);
        Ok(flow.run(self, nl, constraints)?.result)
    }

    /// Synthesizes independent designs in parallel through the default
    /// flow, fanning across all cores via `milo-par`.
    ///
    /// Results come back in input order, deterministically. Every arm
    /// starts from an `Arc`-shared snapshot of the current database and
    /// the shared library — no deep clones — so each design sees the
    /// same compiler cache, and compiled designs from one batch member
    /// do not feed another (snapshot semantics). Afterwards each arm's
    /// new designs are folded back into this instance's database in
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns the first failing design's error (in input order).
    pub fn synthesize_batch(
        &mut self,
        designs: &[Netlist],
        constraints: &Constraints,
    ) -> Result<Vec<SynthesisResult>, MiloError> {
        let runs = self.batch_inner(designs, constraints);
        // Fail atomically: surface the first error (input order) before
        // merging anything, so a failed batch leaves the database
        // untouched.
        let mut completed: Vec<(FlowOutput, DesignDb)> = Vec::with_capacity(designs.len());
        for run in runs {
            completed.push(run?);
        }
        let mut results = Vec::with_capacity(completed.len());
        for (output, db) in completed {
            self.db.merge_from(&db);
            results.push(output.result);
        }
        Ok(results)
    }

    /// [`Milo::synthesize_batch`] with per-design partial failure: one
    /// design panicking or corrupting itself does not poison the batch.
    /// Each design comes back as its own `Result`, in input order;
    /// healthy designs complete normally and their compiled designs are
    /// merged into the database (in input order), while failed designs
    /// surface structured errors and merge nothing.
    ///
    /// Arms whose failure was a caught panic are retried once — panics
    /// may be environmental (and injected faults have bounded charges)
    /// where deterministic stage errors are not worth re-running. An
    /// arm that fails again reports [`RecoveryAction::Retried`].
    pub fn synthesize_batch_results(
        &mut self,
        designs: &[Netlist],
        constraints: &Constraints,
    ) -> Vec<Result<SynthesisResult, MiloError>> {
        self.batch_inner(designs, constraints)
            .into_iter()
            .map(|run| {
                run.map(|(output, db)| {
                    self.db.merge_from(&db);
                    output.result
                })
            })
            .collect()
    }

    /// [`Milo::synthesize_batch_results`], keeping each healthy arm's
    /// full [`FlowOutput`] (synthesis result *and* flow report) instead
    /// of just the result. Per-design merge and retry semantics are
    /// identical — both methods are thin maps over the same batch
    /// driver, so the `SynthesisResult` bytes cannot diverge. This is
    /// what `milo-serve` answers `submit_batch` requests through: the
    /// service splices `FlowOutput::to_json` into every job response,
    /// batch or not.
    pub fn synthesize_batch_outputs(
        &mut self,
        designs: &[Netlist],
        constraints: &Constraints,
    ) -> Vec<Result<FlowOutput, MiloError>> {
        self.batch_inner(designs, constraints)
            .into_iter()
            .map(|run| {
                run.map(|(output, db)| {
                    self.db.merge_from(&db);
                    output
                })
            })
            .collect()
    }

    /// The shared batch driver: parallel per-design flows over a
    /// database snapshot, panic-isolated arms, one bounded retry for
    /// panicked arms. Returns per-design results with each successful
    /// arm's private database, un-merged.
    fn batch_inner(
        &mut self,
        designs: &[Netlist],
        constraints: &Constraints,
    ) -> Vec<Result<(FlowOutput, DesignDb), MiloError>> {
        let lib = self.lib.clone();
        let snapshot = self.db.clone();
        // Resolve the injector once: all arms AND retries share it, so
        // fire charges are batch-global (a once-only fault hits one arm
        // and is spent by the time that arm retries).
        let fault = self
            .fault
            .clone()
            .or_else(|| FaultInjector::from_env().map(Arc::new));
        let arm_run = |nl: &Netlist| -> Result<(FlowOutput, DesignDb), MiloError> {
            let mut arm = Milo {
                lib: lib.clone(),
                db: snapshot.clone(),
                fault: None,
            };
            let mut flow = Flow::standard();
            flow.sample_stats(false);
            if let Some(f) = &fault {
                flow.inject_faults(f.clone());
            }
            let out = flow.run(&mut arm, nl, constraints)?;
            Ok((out, arm.db))
        };
        let arm_panicked =
            |nl: &Netlist, p: milo_par::Panic, recovery: RecoveryAction| MiloError::PassPanicked {
                pass: "batch-arm".to_owned(),
                design: nl.name.clone(),
                payload: p.message(),
                recovery,
            };
        let mut runs: Vec<Result<(FlowOutput, DesignDb), MiloError>> =
            milo_par::try_par_map(designs, arm_run)
                .into_iter()
                .zip(designs)
                .map(|(run, nl)| match run {
                    Ok(inner) => inner,
                    Err(p) => Err(arm_panicked(nl, p, RecoveryAction::Aborted)),
                })
                .collect();
        let retry: Vec<usize> = runs
            .iter()
            .enumerate()
            .filter(|(_, run)| matches!(run, Err(e) if e.is_panic()))
            .map(|(i, _)| i)
            .collect();
        if !retry.is_empty() {
            let retry_designs: Vec<&Netlist> = retry.iter().map(|&i| &designs[i]).collect();
            let second = milo_par::try_par_map(&retry_designs, |nl| arm_run(nl));
            for (&slot, run) in retry.iter().zip(second) {
                runs[slot] = match run {
                    Ok(Ok(inner)) => Ok(inner),
                    Ok(Err(e)) => Err(e.with_recovery(RecoveryAction::Retried)),
                    Err(p) => Err(arm_panicked(&designs[slot], p, RecoveryAction::Retried)),
                };
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_compilers::verify::check_seq_equivalence;
    use milo_netlist::{
        ArithOps, CarryMode, ComponentKind, ControlSet, MicroComponent, PinDir, RegFunctions,
        Trigger,
    };
    use milo_techmap::ecl_library;

    /// A small micro design: adder + register feedback (Fig. 14 shape).
    fn counterish() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let au = nl.add_component(
            "add",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits: 4,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let reg = nl.add_component(
            "reg",
            ComponentKind::Micro(MicroComponent::Register {
                bits: 4,
                trigger: Trigger::EdgeTriggered,
                funcs: RegFunctions::LOAD,
                ctrl: ControlSet::RESET,
            }),
        );
        let vdd = nl.add_component(
            "vdd",
            ComponentKind::Generic(milo_netlist::GenericMacro::Vdd),
        );
        let vss = nl.add_component(
            "vss",
            ComponentKind::Generic(milo_netlist::GenericMacro::Vss),
        );
        let one = nl.add_net("one");
        let zero = nl.add_net("zero");
        nl.connect_named(vdd, "Y", one).unwrap();
        nl.connect_named(vss, "Y", zero).unwrap();
        for i in 0..4 {
            let q = nl.add_net(format!("q{i}"));
            nl.connect_named(reg, &format!("Q{i}"), q).unwrap();
            nl.connect_named(au, &format!("A{i}"), q).unwrap();
            nl.add_port(format!("q{i}"), PinDir::Out, q);
            let s = nl.add_net(format!("s{i}"));
            nl.connect_named(au, &format!("S{i}"), s).unwrap();
            nl.connect_named(reg, &format!("D{i}"), s).unwrap();
            nl.connect_named(au, &format!("B{i}"), if i == 0 { one } else { zero })
                .unwrap();
        }
        nl.connect_named(au, "CIN", zero).unwrap();
        nl.connect_named(reg, "F0", one).unwrap();
        let rst = nl.add_net("rst");
        let clk = nl.add_net("clk");
        nl.connect_named(reg, "RST", rst).unwrap();
        nl.connect_named(reg, "CLK", clk).unwrap();
        nl.add_port("rst", PinDir::In, rst);
        nl.add_port("clk", PinDir::In, clk);
        nl
    }

    #[test]
    fn full_pipeline_improves_counterish_design() {
        let mut milo = Milo::new(ecl_library());
        let entry = counterish();
        let result = milo.synthesize(&entry, &Constraints::none()).unwrap();
        assert!(
            result
                .critic
                .as_ref()
                .unwrap()
                .fired
                .contains(&"adder-register-to-counter"),
            "{:?}",
            result.critic
        );
        assert!(result.stats.area < result.baseline.area, "{result:?}");
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        // Function preserved vs the unoptimized elaboration.
        let baseline_nl = milo.elaborate_unoptimized(&entry).unwrap();
        check_seq_equivalence(&baseline_nl, &result.netlist, 60, 17).unwrap();
        assert!(result.area_improvement_pct() > 0.0);
    }

    #[test]
    fn timing_constraint_drives_cla() {
        let mut milo = Milo::new(ecl_library());
        let mut nl = Netlist::new("addpath");
        let au = nl.add_component(
            "au",
            ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                bits: 8,
                ops: ArithOps::ADD,
                mode: CarryMode::Ripple,
            }),
        );
        let pins: Vec<(String, PinDir)> = nl
            .component(au)
            .unwrap()
            .pins
            .iter()
            .map(|p| (p.name.clone(), p.dir))
            .collect();
        for (pin, dir) in pins {
            let net = nl.add_net(pin.clone());
            nl.connect_named(au, &pin, net).unwrap();
            nl.add_port(pin, dir, net);
        }
        let loose = milo.synthesize(&nl, &Constraints::none()).unwrap();
        let tight = milo
            .synthesize(
                &nl,
                &Constraints::none().with_max_delay(loose.stats.delay * 0.7),
            )
            .unwrap();
        assert!(tight.stats.delay < loose.stats.delay, "{tight:?}");
        assert_eq!(tight.critic.as_ref().unwrap().met_timing, Some(true));
    }
}
