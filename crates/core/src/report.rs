//! Plain-text table rendering for the bench harness reports.

/// A fixed-width text table builder.
///
/// # Examples
///
/// ```
/// use milo_core::Table;
/// let mut t = Table::new(&["Design", "Delay"]);
/// t.row(&["1", "19.76"]);
/// let s = t.render();
/// assert!(s.contains("Design"));
/// assert!(s.contains("19.76"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded).
    pub fn row(&mut self, cells: &[&str]) {
        self.rows.push(
            cells
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<String>>(),
        );
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!("{cell:>w$}  ", w = *w));
            }
            s.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::iter::FromIterator<String> for Table {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let header: Vec<String> = iter.into_iter().collect();
        Self {
            header,
            rows: Vec::new(),
        }
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with no decimals (as Fig. 19 does).
pub fn pct(x: f64) -> String {
    format!("{x:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["A", "Bee"]);
        t.row(&["1234", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Bee"));
        assert!(lines[2].contains("1234"));
    }

    #[test]
    fn formats() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(24.7), "25");
    }
}
