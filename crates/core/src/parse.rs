//! A small textual netlist format — the reproduction's stand-in for the
//! paper's schematic capture / VHDL front ends (§6: "input to the MILO
//! system is a netlist generated through schematic entry or by a compiler
//! for the VHDL hardware description language").
//!
//! # Format
//!
//! ```text
//! # comment
//! design counter8
//! input  clk rst
//! output q0 q1 q2 q3
//! comp au:4:a:r    add1  A0=q0 A1=q1 ... B0=one ... CIN=zero S0=s0 ...
//! comp reg:4:l:R   r1    D0=s0 ... F0=one RST=rst CLK=clk Q0=q0 ...
//! comp and2        g1    A0=a A1=b Y=n1
//! comp vdd         p1    Y=one
//! ```
//!
//! Kind specifiers:
//!
//! | spec | component |
//! |------|-----------|
//! | `and2..and4`, `or*`, `nand*`, `nor*`, `xor*`, `xnor*`, `inv`, `buf` | generic gates |
//! | `vdd`, `vss` | constants |
//! | `mux2`, `mux4` | generic 1-bit muxes |
//! | `dec1`, `dec2` | generic decoders |
//! | `add1`, `add4`, `add4cla` | generic adders |
//! | `cmp2`, `cmp4` | generic comparators |
//! | `ctr2`, `ctr4` | generic counters |
//! | `dff[s][r][e]`, `latch[s][r]` | storage |
//! | `au:<bits>:<ops>:<mode>` | arithmetic unit; ops ⊆ `asid`, mode `r`/`c` |
//! | `mux:<inputs>:<bits>[:e]` | word multiplexor |
//! | `dec:<bits>[:e]` | word decoder |
//! | `cmpu:<bits>:<eq\|lt\|gt\|le\|ge\|ne>` | word comparator |
//! | `lu:<fn>:<inputs>:<bits>` | logic unit |
//! | `gate:<fn>:<inputs>` | wide gate |
//! | `reg:<bits>:<funcs>:<ctrl>` | register; funcs ⊆ `l<>`, ctrl ⊆ `SRE` |
//! | `ctr:<bits>:<funcs>:<ctrl>` | counter; funcs ⊆ `lud` |

use milo_netlist::{
    ArithOps, CarryMode, CmpOp, ComponentKind, ControlSet, CounterFunctions, GateFn, GenericMacro,
    MicroComponent, Netlist, PinDir, RegFunctions, Trigger,
};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its line number.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn gate_fn(s: &str) -> Option<GateFn> {
    Some(match s {
        "and" => GateFn::And,
        "or" => GateFn::Or,
        "nand" => GateFn::Nand,
        "nor" => GateFn::Nor,
        "xor" => GateFn::Xor,
        "xnor" => GateFn::Xnor,
        "inv" => GateFn::Inv,
        "buf" => GateFn::Buf,
        _ => return None,
    })
}

/// Parses a kind specifier into a component kind.
fn parse_kind(spec: &str, line: usize) -> Result<ComponentKind, ParseError> {
    // Micro forms contain ':'.
    if let Some((head, rest)) = spec.split_once(':') {
        let parts: Vec<&str> = rest.split(':').collect();
        let int = |s: &str| -> Result<u8, ParseError> {
            s.parse()
                .map_err(|_| err(line, format!("bad number {s} in {spec}")))
        };
        return match head {
            "au" => {
                if parts.len() != 3 {
                    return Err(err(line, format!("au needs bits:ops:mode, got {spec}")));
                }
                let bits = int(parts[0])?;
                let mut ops = ArithOps::default();
                for c in parts[1].chars() {
                    match c {
                        'a' => ops.add = true,
                        's' => ops.sub = true,
                        'i' => ops.inc = true,
                        'd' => ops.dec = true,
                        _ => return Err(err(line, format!("bad op flag {c}"))),
                    }
                }
                let mode = match parts[2] {
                    "r" => CarryMode::Ripple,
                    "c" => CarryMode::CarryLookahead,
                    other => return Err(err(line, format!("bad carry mode {other}"))),
                };
                Ok(ComponentKind::Micro(MicroComponent::ArithmeticUnit {
                    bits,
                    ops,
                    mode,
                }))
            }
            "mux" => {
                let inputs = int(parts[0])?;
                let bits = int(parts.get(1).copied().unwrap_or("1"))?;
                let enable = parts.get(2) == Some(&"e");
                Ok(ComponentKind::Micro(MicroComponent::Multiplexor {
                    bits,
                    inputs,
                    enable,
                }))
            }
            "dec" => {
                let bits = int(parts[0])?;
                let enable = parts.get(1) == Some(&"e");
                Ok(ComponentKind::Micro(MicroComponent::Decoder {
                    bits,
                    enable,
                }))
            }
            "cmpu" => {
                let bits = int(parts[0])?;
                let function = match *parts.get(1).unwrap_or(&"eq") {
                    "eq" => CmpOp::Eq,
                    "lt" => CmpOp::Lt,
                    "gt" => CmpOp::Gt,
                    "le" => CmpOp::Le,
                    "ge" => CmpOp::Ge,
                    "ne" => CmpOp::Ne,
                    other => return Err(err(line, format!("bad cmp op {other}"))),
                };
                Ok(ComponentKind::Micro(MicroComponent::Comparator {
                    bits,
                    function,
                }))
            }
            "lu" => {
                if parts.len() != 3 {
                    return Err(err(line, "lu needs fn:inputs:bits"));
                }
                let function =
                    gate_fn(parts[0]).ok_or_else(|| err(line, format!("bad fn {}", parts[0])))?;
                Ok(ComponentKind::Micro(MicroComponent::LogicUnit {
                    function,
                    inputs: int(parts[1])?,
                    bits: int(parts[2])?,
                }))
            }
            "gate" => {
                if parts.len() != 2 {
                    return Err(err(line, "gate needs fn:inputs"));
                }
                let function =
                    gate_fn(parts[0]).ok_or_else(|| err(line, format!("bad fn {}", parts[0])))?;
                Ok(ComponentKind::Micro(MicroComponent::Gate {
                    function,
                    inputs: int(parts[1])?,
                }))
            }
            "reg" => {
                if parts.len() != 3 {
                    return Err(err(line, "reg needs bits:funcs:ctrl"));
                }
                let bits = int(parts[0])?;
                let mut funcs = RegFunctions::default();
                for c in parts[1].chars() {
                    match c {
                        'l' => funcs.load = true,
                        '<' => funcs.shift_left = true,
                        '>' => funcs.shift_right = true,
                        '-' => {}
                        _ => return Err(err(line, format!("bad reg func {c}"))),
                    }
                }
                let ctrl = parse_ctrl(parts[2], line)?;
                Ok(ComponentKind::Micro(MicroComponent::Register {
                    bits,
                    trigger: Trigger::EdgeTriggered,
                    funcs,
                    ctrl,
                }))
            }
            "ctr" => {
                if parts.len() != 3 {
                    return Err(err(line, "ctr needs bits:funcs:ctrl"));
                }
                let bits = int(parts[0])?;
                let mut funcs = CounterFunctions::default();
                for c in parts[1].chars() {
                    match c {
                        'l' => funcs.load = true,
                        'u' => funcs.up = true,
                        'd' => funcs.down = true,
                        '-' => {}
                        _ => return Err(err(line, format!("bad ctr func {c}"))),
                    }
                }
                let ctrl = parse_ctrl(parts[2], line)?;
                Ok(ComponentKind::Micro(MicroComponent::Counter {
                    bits,
                    funcs,
                    ctrl,
                }))
            }
            other => Err(err(line, format!("unknown micro kind {other}"))),
        };
    }
    // Generic forms.
    let generic = match spec {
        "vdd" => Some(GenericMacro::Vdd),
        "vss" => Some(GenericMacro::Vss),
        "inv" => Some(GenericMacro::Gate(GateFn::Inv, 1)),
        "buf" => Some(GenericMacro::Gate(GateFn::Buf, 1)),
        "mux2" => Some(GenericMacro::Mux { selects: 1 }),
        "mux4" => Some(GenericMacro::Mux { selects: 2 }),
        "dec1" => Some(GenericMacro::Decoder { inputs: 1 }),
        "dec2" => Some(GenericMacro::Decoder { inputs: 2 }),
        "add1" => Some(GenericMacro::Adder {
            bits: 1,
            cla: false,
        }),
        "add4" => Some(GenericMacro::Adder {
            bits: 4,
            cla: false,
        }),
        "add4cla" => Some(GenericMacro::Adder { bits: 4, cla: true }),
        "cmp2" => Some(GenericMacro::Comparator { bits: 2 }),
        "cmp4" => Some(GenericMacro::Comparator { bits: 4 }),
        "ctr2" => Some(GenericMacro::Counter { bits: 2 }),
        "ctr4" => Some(GenericMacro::Counter { bits: 4 }),
        _ => None,
    };
    if let Some(g) = generic {
        return Ok(ComponentKind::Generic(g));
    }
    // Sized gates: and2..and4 etc.
    for (name, f) in [
        ("and", GateFn::And),
        ("nand", GateFn::Nand),
        ("nor", GateFn::Nor),
        ("xnor", GateFn::Xnor),
        ("xor", GateFn::Xor),
        ("or", GateFn::Or),
    ] {
        if let Some(num) = spec.strip_prefix(name) {
            if let Ok(n) = num.parse::<u8>() {
                if (2..=4).contains(&n) {
                    return Ok(ComponentKind::Generic(GenericMacro::Gate(f, n)));
                }
            }
        }
    }
    // Storage: dff[s][r][e], latch[s][r].
    if let Some(flags) = spec.strip_prefix("dff") {
        if flags.chars().all(|c| "sre".contains(c)) {
            return Ok(ComponentKind::Generic(GenericMacro::Dff {
                set: flags.contains('s'),
                reset: flags.contains('r'),
                enable: flags.contains('e'),
            }));
        }
    }
    if let Some(flags) = spec.strip_prefix("latch") {
        if flags.chars().all(|c| "sr".contains(c)) {
            return Ok(ComponentKind::Generic(GenericMacro::Latch {
                set: flags.contains('s'),
                reset: flags.contains('r'),
            }));
        }
    }
    Err(err(line, format!("unknown component kind {spec}")))
}

fn parse_ctrl(s: &str, line: usize) -> Result<ControlSet, ParseError> {
    let mut ctrl = ControlSet::default();
    for c in s.chars() {
        match c {
            'S' => ctrl.set = true,
            'R' => ctrl.reset = true,
            'E' => ctrl.enable = true,
            '-' => {}
            _ => return Err(err(line, format!("bad control flag {c}"))),
        }
    }
    Ok(ctrl)
}

/// Parses the MILO text netlist format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line.
///
/// # Examples
///
/// ```
/// let src = "
/// design demo
/// input a b
/// output y
/// comp nand2 g1 A0=a A1=b Y=y
/// ";
/// let nl = milo_core::parse_netlist(src)?;
/// assert_eq!(nl.name, "demo");
/// assert_eq!(nl.component_count(), 1);
/// # Ok::<(), milo_core::ParseError>(())
/// ```
pub fn parse_netlist(src: &str) -> Result<Netlist, ParseError> {
    let mut nl = Netlist::new("unnamed");
    let mut nets: HashMap<String, milo_netlist::NetId> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut words = text.split_whitespace();
        let Some(keyword) = words.next() else {
            continue; // unreachable: the line is non-empty
        };
        match keyword {
            "design" => {
                nl.name = words
                    .next()
                    .ok_or_else(|| err(line, "design needs a name"))?
                    .to_owned();
            }
            "input" => inputs.extend(words.map(str::to_owned)),
            "output" => outputs.extend(words.map(str::to_owned)),
            "comp" => {
                let spec = words.next().ok_or_else(|| err(line, "comp needs a kind"))?;
                let name = words.next().ok_or_else(|| err(line, "comp needs a name"))?;
                let kind = parse_kind(spec, line)?;
                let id = nl.add_component(name, kind);
                for assign in words {
                    let (pin, net_name) = assign
                        .split_once('=')
                        .ok_or_else(|| err(line, format!("bad pin assignment {assign}")))?;
                    let net = *nets
                        .entry(net_name.to_owned())
                        .or_insert_with(|| nl.add_net(net_name));
                    nl.connect_named(id, pin, net)
                        .map_err(|e| err(line, format!("{e} (pin {pin})")))?;
                }
            }
            other => return Err(err(line, format!("unknown keyword {other}"))),
        }
    }
    for name in inputs {
        let net = *nets
            .entry(name.clone())
            .or_insert_with(|| nl.add_net(&name));
        nl.add_port(name, PinDir::In, net);
    }
    for name in outputs {
        let net = *nets
            .entry(name.clone())
            .or_insert_with(|| nl.add_net(&name));
        nl.add_port(name, PinDir::Out, net);
    }
    Ok(nl)
}

/// Serializes a generic/micro netlist back into the text format, such
/// that `parse_netlist(emit_netlist(nl))` reproduces an equivalent design.
///
/// # Errors
///
/// Returns an error string for component kinds the text format cannot
/// express (technology cells, design instances).
pub fn emit_netlist(nl: &Netlist) -> Result<String, String> {
    use std::fmt::Write;
    let mut out = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(out, "design {}", nl.name);
    let net_name = |id: milo_netlist::NetId| format!("n{}", id.index());
    let inputs: Vec<String> = nl
        .ports()
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .map(|p| net_name(p.net))
        .collect();
    let outputs: Vec<String> = nl
        .ports()
        .iter()
        .filter(|p| p.dir == PinDir::Out)
        .map(|p| net_name(p.net))
        .collect();
    if !inputs.is_empty() {
        let _ = writeln!(out, "input {}", inputs.join(" "));
    }
    if !outputs.is_empty() {
        let _ = writeln!(out, "output {}", outputs.join(" "));
    }
    for id in nl.component_ids() {
        let comp = nl
            .component(id)
            .map_err(|e| format!("component {id:?} vanished mid-iteration: {e}"))?;
        let spec = kind_spec(&comp.kind).ok_or_else(|| {
            format!(
                "component {} ({}) has no text form",
                comp.name,
                comp.kind.label()
            )
        })?;
        let _ = write!(out, "comp {spec} c{}", id.index());
        for pin in &comp.pins {
            if let Some(net) = pin.net {
                let _ = write!(out, " {}={}", pin.name, net_name(net));
            }
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

/// The kind specifier of a component, when the format can express it.
fn kind_spec(kind: &ComponentKind) -> Option<String> {
    match kind {
        ComponentKind::Generic(m) => Some(match *m {
            GenericMacro::Gate(GateFn::Inv, 1) => "inv".to_owned(),
            GenericMacro::Gate(GateFn::Buf, 1) => "buf".to_owned(),
            GenericMacro::Gate(f, n) => format!("{}{n}", f.mnemonic()),
            GenericMacro::Vdd => "vdd".to_owned(),
            GenericMacro::Vss => "vss".to_owned(),
            GenericMacro::Mux { selects } => format!("mux{}", 1u8 << selects),
            GenericMacro::Decoder { inputs } => format!("dec{inputs}"),
            GenericMacro::Adder { bits, cla } => {
                format!("add{bits}{}", if cla { "cla" } else { "" })
            }
            GenericMacro::Comparator { bits } => format!("cmp{bits}"),
            GenericMacro::Counter { bits } => format!("ctr{bits}"),
            GenericMacro::Dff { set, reset, enable } => {
                let mut s = "dff".to_owned();
                if set {
                    s.push('s');
                }
                if reset {
                    s.push('r');
                }
                if enable {
                    s.push('e');
                }
                s
            }
            GenericMacro::Latch { set, reset } => {
                let mut s = "latch".to_owned();
                if set {
                    s.push('s');
                }
                if reset {
                    s.push('r');
                }
                s
            }
        }),
        ComponentKind::Micro(m) => Some(match *m {
            MicroComponent::Gate { function, inputs } => {
                format!("gate:{}:{inputs}", function.mnemonic())
            }
            MicroComponent::Multiplexor {
                bits,
                inputs,
                enable,
            } => {
                format!("mux:{inputs}:{bits}{}", if enable { ":e" } else { "" })
            }
            MicroComponent::Decoder { bits, enable } => {
                format!("dec:{bits}{}", if enable { ":e" } else { "" })
            }
            MicroComponent::Comparator { bits, function } => {
                format!("cmpu:{bits}:{}", format!("{function:?}").to_lowercase())
            }
            MicroComponent::LogicUnit {
                function,
                inputs,
                bits,
            } => {
                format!("lu:{}:{inputs}:{bits}", function.mnemonic())
            }
            MicroComponent::ArithmeticUnit { bits, ops, mode } => {
                let mut f = String::new();
                if ops.add {
                    f.push('a');
                }
                if ops.sub {
                    f.push('s');
                }
                if ops.inc {
                    f.push('i');
                }
                if ops.dec {
                    f.push('d');
                }
                format!(
                    "au:{bits}:{f}:{}",
                    if mode == CarryMode::CarryLookahead {
                        "c"
                    } else {
                        "r"
                    }
                )
            }
            MicroComponent::Register {
                bits, funcs, ctrl, ..
            } => {
                format!("reg:{bits}:{}:{}", reg_funcs_spec(funcs), ctrl_spec(ctrl))
            }
            MicroComponent::Counter { bits, funcs, ctrl } => {
                let mut f = String::new();
                if funcs.load {
                    f.push('l');
                }
                if funcs.up {
                    f.push('u');
                }
                if funcs.down {
                    f.push('d');
                }
                if f.is_empty() {
                    f.push('-');
                }
                format!("ctr:{bits}:{f}:{}", ctrl_spec(ctrl))
            }
        }),
        ComponentKind::Tech(_) | ComponentKind::Instance { .. } => None,
    }
}

fn reg_funcs_spec(funcs: RegFunctions) -> String {
    let mut s = String::new();
    if funcs.load {
        s.push('l');
    }
    if funcs.shift_left {
        s.push('<');
    }
    if funcs.shift_right {
        s.push('>');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn ctrl_spec(ctrl: ControlSet) -> String {
    let mut s = String::new();
    if ctrl.set {
        s.push('S');
    }
    if ctrl.reset {
        s.push('R');
    }
    if ctrl.enable {
        s.push('E');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::Simulator;

    #[test]
    fn parse_gate_design_and_simulate() {
        let src = "
design half_adder
input a b
output s c
comp xor2 g1 A0=a A1=b Y=s
comp and2 g2 A0=a A1=b Y=c
";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.name, "half_adder");
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", true).unwrap();
        sim.set_input("b", true).unwrap();
        sim.settle();
        assert!(!sim.output("s").unwrap());
        assert!(sim.output("c").unwrap());
    }

    #[test]
    fn parse_micro_components() {
        let src = "
design dp
input clk
output q0 q1
comp au:2:as:r alu A0=q0 A1=q1 B0=q0 B1=q1 OP0=q0 CIN=q0 S0=s0 S1=s1 COUT=co
comp reg:2:l:R r1 D0=s0 D1=s1 F0=q0 RST=q0 CLK=clk Q0=q0 Q1=q1
";
        let nl = parse_netlist(src).unwrap();
        assert_eq!(nl.component_count(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_netlist("design x\ncomp bogus g1 Y=y").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e2 = parse_netlist("design x\ncomp and2 g1 NOPE").unwrap_err();
        assert!(e2.message.contains("bad pin assignment"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse_netlist("# header\n\ndesign t # trailing\ninput a\noutput a\n").unwrap();
        assert_eq!(nl.name, "t");
        assert_eq!(nl.ports().len(), 2);
    }

    #[test]
    fn emit_parse_roundtrip_preserves_structure_and_behaviour() {
        let src = "
design rt
input a b c
output y z
comp and3 g1 A0=a A1=b A2=c Y=t
comp xor2 g2 A0=t A1=c Y=y
comp dffr f1 D=y CLK=a RST=b Q=z
";
        let nl = parse_netlist(src).unwrap();
        let emitted = emit_netlist(&nl).unwrap();
        let back = parse_netlist(&emitted).unwrap();
        assert_eq!(back.component_count(), nl.component_count());
        assert_eq!(back.ports().len(), nl.ports().len());
        // Behavioural check by port position: drive both designs with the
        // same values through their (order-preserved) port lists.
        use milo_netlist::{PinDir, Simulator};
        let mut sim_a = Simulator::new(&nl).unwrap();
        let mut sim_b = Simulator::new(&back).unwrap();
        let in_names = |n: &Netlist| -> Vec<String> {
            n.ports()
                .iter()
                .filter(|p| p.dir == PinDir::In)
                .map(|p| p.name.clone())
                .collect()
        };
        let out_names = |n: &Netlist| -> Vec<String> {
            n.ports()
                .iter()
                .filter(|p| p.dir == PinDir::Out)
                .map(|p| p.name.clone())
                .collect()
        };
        let (ia, ib) = (in_names(&nl), in_names(&back));
        let (oa, ob) = (out_names(&nl), out_names(&back));
        for step in 0..40u32 {
            let pat = step.wrapping_mul(0x9E37_79B9);
            for (k, (na, nb)) in ia.iter().zip(&ib).enumerate() {
                let v = pat >> (k % 32) & 1 == 1;
                sim_a.set_input(na, v).unwrap();
                sim_b.set_input(nb, v).unwrap();
            }
            sim_a.step();
            sim_b.step();
            for (na, nb) in oa.iter().zip(&ob) {
                assert_eq!(
                    sim_a.output(na).unwrap(),
                    sim_b.output(nb).unwrap(),
                    "step {step}, output {na}/{nb}"
                );
            }
        }
    }

    #[test]
    fn emit_micro_components_roundtrip() {
        let entry = "
design m
input x
output q0
comp au:3:asid:c alu A0=x A1=x A2=x B0=x B1=x B2=x OP0=x OP1=x CIN=x S0=s0 S1=s1 S2=s2 COUT=co
comp reg:3:l>:RE r D0=s0 D1=s1 D2=s2 SIR=x F0=x F1=x RST=x EN=x CLK=x Q0=q0 Q1=q1 Q2=q2
comp ctr:2:lud:SE c2 D0=x D1=x LOAD=x UP=x SET=x EN=x CLK=x Q0=c0 Q1=c1 CO=cc
";
        let nl = parse_netlist(entry).unwrap();
        let emitted = emit_netlist(&nl).unwrap();
        let back = parse_netlist(&emitted).unwrap();
        assert_eq!(back.component_count(), nl.component_count());
        // Kind specs survive exactly.
        for (a, b) in nl.component_ids().zip(back.component_ids()) {
            assert_eq!(
                nl.component(a).unwrap().kind.label(),
                back.component(b).unwrap().kind.label()
            );
        }
    }

    #[test]
    fn emit_rejects_tech_cells() {
        let mut nl = Netlist::new("t");
        nl.add_component(
            "c",
            ComponentKind::Tech(milo_netlist::TechCell {
                name: "X".into(),
                family: "t".into(),
                function: milo_netlist::CellFunction::Const(true),
                area: 1.0,
                delay: 0.1,
                pin_delay: vec![],
                load_delay: 0.1,
                power: 0.1,
                max_fanout: 4,
                level: milo_netlist::PowerLevel::Standard,
            }),
        );
        assert!(emit_netlist(&nl).is_err());
    }

    #[test]
    fn all_storage_kinds_parse() {
        for spec in [
            "dff", "dffr", "dffsre", "latch", "latchsr", "ctr4", "add4cla",
        ] {
            assert!(parse_kind(spec, 1).is_ok(), "{spec}");
        }
    }
}
