//! Deterministic fault injection for the flow engine.
//!
//! The fault-tolerance layer (panic isolation, pass budgets,
//! checkpoint/rollback, batch partial failure — see
//! `docs/ROBUSTNESS.md`) is only trustworthy if its recovery paths run
//! in CI. [`FaultInjector`] makes faults reproducible: it panics,
//! corrupts the work netlist, or exhausts a pass budget at exact
//! (pass, design) coordinates, a bounded number of times.
//!
//! Two ways in, mirroring `MILO_MATCH_ORACLE`:
//!
//! * **Environment** — `MILO_FAULT_INJECT="panic@bottom-up-logic/fig19_3"`
//!   arms the injector for every flow run in the process (parsed per
//!   run; share one injector via the programmatic API when fire counts
//!   must span runs). Multiple faults separate with `;`, `*` wildcards
//!   either coordinate, and a `#N` suffix fires the fault `N` times
//!   (`#inf` forever): `corrupt@compile/*#2;budget@*/abadd`.
//! * **Programmatic** — build [`FaultSpec`]s, wrap in an
//!   `Arc<FaultInjector>`, and hand it to `Flow::inject_faults` or
//!   `Milo::set_fault_injector`. A batch shares one injector across
//!   all arms (and their retries), so fire counts are batch-global.

use milo_netlist::{Netlist, PinDir, PinRef};
use std::sync::atomic::{AtomicU32, Ordering};

/// What kind of fault to inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Panic inside the pass (caught by the flow's panic isolation).
    Panic,
    /// Structurally corrupt the work netlist right after the pass runs
    /// (a second driver on a driven net), so validation checkpoints
    /// and the corruption gate have something real to catch.
    Corrupt,
    /// Report the pass's budget as exhausted regardless of actual work.
    Budget,
}

impl FaultKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "corrupt" => Ok(FaultKind::Corrupt),
            "budget" => Ok(FaultKind::Budget),
            other => Err(format!(
                "unknown fault kind {other:?} (expected panic|corrupt|budget)"
            )),
        }
    }
}

/// One armed fault: kind plus the (pass, design) coordinates it fires
/// at, and how many times it fires before disarming.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Pass name to fire at; `"*"` matches every pass.
    pub pass: String,
    /// Entry-design name to fire at; `"*"` matches every design.
    pub design: String,
    /// Number of firings before the fault disarms (`u32::MAX` ≈ ∞).
    pub times: u32,
}

impl FaultSpec {
    /// A fault firing once at exact coordinates.
    pub fn once(kind: FaultKind, pass: impl Into<String>, design: impl Into<String>) -> Self {
        Self {
            kind,
            pass: pass.into(),
            design: design.into(),
            times: 1,
        }
    }

    /// Builder: fire `times` times before disarming.
    #[must_use]
    pub fn repeated(mut self, times: u32) -> Self {
        self.times = times;
        self
    }

    fn matches(&self, kind: FaultKind, pass: &str, design: &str) -> bool {
        self.kind == kind
            && (self.pass == "*" || self.pass == pass)
            && (self.design == "*" || self.design == design)
    }
}

/// A set of armed faults with atomic per-fault fire counters, safe to
/// share (`Arc`) across the parallel arms of a batch.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Vec<(FaultSpec, AtomicU32)>,
}

impl FaultInjector {
    /// Arms the given faults.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        Self {
            armed: specs
                .into_iter()
                .map(|s| {
                    let times = s.times;
                    (s, AtomicU32::new(times))
                })
                .collect(),
        }
    }

    /// Parses the `MILO_FAULT_INJECT` grammar:
    /// `kind@pass/design[#times]` joined by `;` — e.g.
    /// `panic@bottom-up-logic/fig19_3#2;corrupt@compile/*`.
    ///
    /// # Errors
    ///
    /// Describes the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?} missing `@`"))?;
            let (coords, times) = match rest.rsplit_once('#') {
                Some((coords, "inf")) => (coords, u32::MAX),
                Some((coords, n)) => (
                    coords,
                    n.parse::<u32>()
                        .map_err(|_| format!("bad fire count {n:?} in {clause:?}"))?,
                ),
                None => (rest, 1),
            };
            let (pass, design) = coords
                .split_once('/')
                .ok_or_else(|| format!("fault clause {clause:?} missing `/`"))?;
            if pass.is_empty() || design.is_empty() {
                return Err(format!("fault clause {clause:?} has empty coordinates"));
            }
            specs.push(FaultSpec {
                kind: FaultKind::parse(kind)?,
                pass: pass.to_owned(),
                design: design.to_owned(),
                times,
            });
        }
        Ok(Self::new(specs))
    }

    /// Reads `MILO_FAULT_INJECT`; `None` when unset/empty.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — fault injection is a test harness,
    /// and a silently ignored typo would void the CI coverage it exists
    /// to provide.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("MILO_FAULT_INJECT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::parse(&spec) {
            Ok(inj) => Some(inj),
            Err(e) => panic!("MILO_FAULT_INJECT: {e}"),
        }
    }

    /// Whether a fault of `kind` fires at `(pass, design)` — consuming
    /// one charge from the first armed matching spec. Deterministic for
    /// a fixed sequence of queries per (pass, design) coordinate.
    pub fn fires(&self, kind: FaultKind, pass: &str, design: &str) -> bool {
        for (spec, remaining) in &self.armed {
            if !spec.matches(kind, pass, design) {
                continue;
            }
            if spec.times == u32::MAX {
                return true;
            }
            if remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Deterministically corrupts a netlist: the second connected
    /// output pin (on a different component than the first) is moved
    /// onto the first's net, creating a multi-driven net — and usually
    /// an undriven one where it left. Returns `false` when the netlist
    /// is too small to corrupt this way.
    pub fn corrupt(nl: &mut Netlist) -> bool {
        let mut first_net: Option<milo_netlist::NetId> = None;
        let mut victim: Option<(PinRef, milo_netlist::NetId)> = None;
        'scan: for id in nl.component_ids() {
            let Ok(comp) = nl.component(id) else { continue };
            for (i, pin) in comp.pins.iter().enumerate() {
                let (PinDir::Out, Some(net)) = (pin.dir, pin.net) else {
                    continue;
                };
                let pin_ref = PinRef::new(id, i as u16);
                match first_net {
                    None => {
                        first_net = Some(net);
                        break; // one output per component is enough
                    }
                    Some(target) if target != net => {
                        victim = Some((pin_ref, target));
                        break 'scan;
                    }
                    Some(_) => break,
                }
            }
        }
        match victim {
            Some((pin_ref, target)) => {
                nl.disconnect(pin_ref).is_ok() && nl.connect(pin_ref, target).is_ok()
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_netlist::fatal_violations;

    #[test]
    fn parse_grammar() {
        let inj = FaultInjector::parse("panic@bottom-up-logic/fig19_3#2; corrupt@compile/*")
            .expect("parses");
        assert!(inj.fires(FaultKind::Panic, "bottom-up-logic", "fig19_3"));
        assert!(inj.fires(FaultKind::Panic, "bottom-up-logic", "fig19_3"));
        assert!(
            !inj.fires(FaultKind::Panic, "bottom-up-logic", "fig19_3"),
            "two charges only"
        );
        assert!(!inj.fires(FaultKind::Panic, "compile", "fig19_3"));
        assert!(inj.fires(FaultKind::Corrupt, "compile", "anything"));
        assert!(
            !inj.fires(FaultKind::Corrupt, "compile", "again"),
            "single charge"
        );

        assert!(FaultInjector::parse("panic@x").is_err());
        assert!(FaultInjector::parse("explode@a/b").is_err());
        assert!(FaultInjector::parse("panic@a/b#lots").is_err());
    }

    #[test]
    fn unbounded_fires_forever() {
        let inj = FaultInjector::parse("budget@*/*#inf").expect("parses");
        for _ in 0..100 {
            assert!(inj.fires(FaultKind::Budget, "p", "d"));
        }
    }

    #[test]
    fn corrupt_introduces_fatal_violation() {
        let mut nl = milo_circuits::random_logic(20, 5, 42);
        assert!(fatal_violations(&nl).is_empty(), "clean before");
        assert!(FaultInjector::corrupt(&mut nl), "big enough to corrupt");
        assert!(
            !fatal_violations(&nl).is_empty(),
            "multi-driven (or undriven) net introduced"
        );
    }
}
