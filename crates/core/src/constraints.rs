//! User design constraints (§6: "included in the input are parameters for
//! path delays, area, and power consumption that must be met by the
//! design optimizers").

/// Optimization constraints handed to the MILO pipeline.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Constraints {
    /// Maximum worst-path delay in ns (`None` = optimize area only).
    pub max_delay: Option<f64>,
    /// Per-output-port path-delay constraints in ns (§6: "a time
    /// constraint from the input A to the output C"). Paths to ports not
    /// listed here fall back to `max_delay`, or are unconstrained.
    pub path_delays: Vec<(String, f64)>,
    /// Area budget in cell units (reported against, not enforced).
    pub max_area: Option<f64>,
    /// Power budget in mA (reported against, not enforced).
    pub max_power: Option<f64>,
}

impl Constraints {
    /// No constraints: pure area optimization.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: sets the delay constraint.
    ///
    /// # Examples
    ///
    /// ```
    /// use milo_core::Constraints;
    /// let c = Constraints::none().with_max_delay(12.5);
    /// assert_eq!(c.max_delay, Some(12.5));
    /// ```
    #[must_use]
    pub fn with_max_delay(mut self, ns: f64) -> Self {
        self.max_delay = Some(ns);
        self
    }

    /// Builder: sets the area budget.
    #[must_use]
    pub fn with_max_area(mut self, cells: f64) -> Self {
        self.max_area = Some(cells);
        self
    }

    /// Builder: sets the power budget.
    #[must_use]
    pub fn with_max_power(mut self, ma: f64) -> Self {
        self.max_power = Some(ma);
        self
    }

    /// Builder: constrains the worst path *into one output port*.
    ///
    /// # Examples
    ///
    /// ```
    /// use milo_core::Constraints;
    /// let c = Constraints::none().with_path_delay("C0", 4.5);
    /// assert_eq!(c.required_for("C0"), Some(4.5));
    /// assert_eq!(c.required_for("other"), None);
    /// ```
    #[must_use]
    pub fn with_path_delay(mut self, output_port: impl Into<String>, ns: f64) -> Self {
        self.path_delays.push((output_port.into(), ns));
        self
    }

    /// The required time for a path ending at `output_port` (the
    /// port-specific constraint, falling back to `max_delay`).
    pub fn required_for(&self, output_port: &str) -> Option<f64> {
        self.path_delays
            .iter()
            .find(|(p, _)| p == output_port)
            .map(|(_, ns)| *ns)
            .or(self.max_delay)
    }

    /// The tightest delay constraint present, if any (used where a single
    /// scalar bound is needed, e.g. the microarchitecture critic's
    /// carry-mode tradeoff loop).
    pub fn tightest_delay(&self) -> Option<f64> {
        self.path_delays
            .iter()
            .map(|(_, ns)| *ns)
            .chain(self.max_delay)
            .min_by(f64::total_cmp)
    }

    /// Whether any timing constraint is present.
    pub fn has_timing(&self) -> bool {
        self.max_delay.is_some() || !self.path_delays.is_empty()
    }

    /// A canonical text rendering of every field, for fingerprinting:
    /// folding this into a netlist's structural hash (via
    /// `milo_netlist::fnv1a`) yields a cache key that cannot alias two
    /// jobs differing only in constraints. Path delays are sorted so
    /// builder-call order does not leak into the key; floats render via
    /// their exact bit pattern so `-0.0`/`0.0` and subnormal noise
    /// cannot collide distinct constraint sets.
    pub fn cache_summary(&self) -> String {
        let f = |v: &Option<f64>| match v {
            Some(x) => format!("{:016x}", x.to_bits()),
            None => "-".to_owned(),
        };
        let mut paths: Vec<String> = self
            .path_delays
            .iter()
            .map(|(p, ns)| format!("{p}={:016x}", ns.to_bits()))
            .collect();
        paths.sort_unstable();
        format!(
            "delay:{} area:{} power:{} paths:[{}]",
            f(&self.max_delay),
            f(&self.max_area),
            f(&self.max_power),
            paths.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_summary_distinguishes_every_field() {
        let base = Constraints::none();
        let variants = [
            base.clone().with_max_delay(4.5),
            base.clone().with_max_delay(9.0),
            base.clone().with_max_area(50.0),
            base.clone().with_max_power(9.0),
            base.clone().with_path_delay("C0", 4.5),
            base.clone().with_path_delay("C1", 4.5),
        ];
        let mut seen = vec![base.cache_summary()];
        for v in &variants {
            let s = v.cache_summary();
            assert!(!seen.contains(&s), "aliased constraint summary: {s}");
            seen.push(s);
        }
        // Path order is canonicalized; repeated renders are stable.
        let a = base
            .clone()
            .with_path_delay("C0", 1.0)
            .with_path_delay("C1", 2.0);
        let b = base
            .clone()
            .with_path_delay("C1", 2.0)
            .with_path_delay("C0", 1.0);
        assert_eq!(a.cache_summary(), b.cache_summary());
        assert_eq!(a.cache_summary(), a.cache_summary());
    }

    #[test]
    fn builder_chains() {
        let c = Constraints::none()
            .with_max_delay(3.0)
            .with_max_area(50.0)
            .with_max_power(9.0);
        assert_eq!(c.max_delay, Some(3.0));
        assert_eq!(c.max_area, Some(50.0));
        assert_eq!(c.max_power, Some(9.0));
    }
}
