//! # milo-core
//!
//! The MILO system facade — a Rust reproduction of *MILO: A
//! Microarchitecture and Logic Optimizer* (Vander Zanden & Gajski, 1988).
//!
//! MILO accepts a microarchitecture- or gate-level netlist plus design
//! constraints, optimizes at the microarchitecture level (with feedback
//! from compiled, technology-mapped statistics), expands components
//! through parameterized logic compilers into generic SSI/MSI macros,
//! maps them into a technology library, and optimizes the result with
//! rule-based critics and the eight delay-reduction strategies.
//!
//! # Examples
//!
//! ```
//! use milo_core::{parse_netlist, Constraints, Milo};
//! use milo_techmap::ecl_library;
//!
//! let nl = parse_netlist("
//! design demo
//! input a b c
//! output y
//! comp and2 g1 A0=a A1=b Y=t
//! comp or2  g2 A0=t A1=c Y=y
//! ")?;
//! let mut milo = Milo::new(ecl_library());
//! let result = milo.synthesize(&nl, &Constraints::none())?;
//! assert!(result.stats.area > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Flow-facing code must propagate errors, not die on them: a synthesis
// service can't afford an `unwrap` in the middle of a 200-design batch.
// Tests are exempt — panicking asserts are the point there.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod constraints;
mod fault;
mod flow;
mod parse;
mod pipeline;
mod report;

pub use constraints::Constraints;
pub use fault::{FaultInjector, FaultKind, FaultSpec};
pub use flow::{
    json_string, BottomUpLogic, Compile, FailureAction, FanoutRepair, Flow, FlowContext, FlowEvent,
    FlowOptions, FlowOutput, FlowReport, MicroCritic, Pass, PassOutcome, PassPolicy, PassReport,
    RewriteBudget, TimingArea,
};
pub use parse::{emit_netlist, parse_netlist, ParseError};
pub use pipeline::{Milo, MiloError, RecoveryAction, SynthesisResult};
pub use report::{f2, pct, Table};

// Re-export the workspace API for single-dependency consumers.
pub use milo_compilers as compilers;
pub use milo_logic as logic;
pub use milo_microarch as microarch;
pub use milo_netlist as netlist;
pub use milo_opt as opt;
pub use milo_rules as rules;
pub use milo_techmap as techmap;
pub use milo_timing as timing;
pub use milo_trace as trace;
