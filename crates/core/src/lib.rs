//! # milo-core
//!
//! The MILO system facade — a Rust reproduction of *MILO: A
//! Microarchitecture and Logic Optimizer* (Vander Zanden & Gajski, 1988).
//!
//! MILO accepts a microarchitecture- or gate-level netlist plus design
//! constraints, optimizes at the microarchitecture level (with feedback
//! from compiled, technology-mapped statistics), expands components
//! through parameterized logic compilers into generic SSI/MSI macros,
//! maps them into a technology library, and optimizes the result with
//! rule-based critics and the eight delay-reduction strategies.
//!
//! # Examples
//!
//! ```
//! use milo_core::{parse_netlist, Constraints, Milo};
//! use milo_techmap::ecl_library;
//!
//! let nl = parse_netlist("
//! design demo
//! input a b c
//! output y
//! comp and2 g1 A0=a A1=b Y=t
//! comp or2  g2 A0=t A1=c Y=y
//! ")?;
//! let mut milo = Milo::new(ecl_library());
//! let result = milo.synthesize(&nl, &Constraints::none())?;
//! assert!(result.stats.area > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod constraints;
mod flow;
mod parse;
mod pipeline;
mod report;

pub use constraints::Constraints;
pub use flow::{
    BottomUpLogic, Compile, FanoutRepair, Flow, FlowContext, FlowEvent, FlowOutput, FlowReport,
    MicroCritic, Pass, PassReport, TimingArea,
};
pub use parse::{emit_netlist, parse_netlist, ParseError};
pub use pipeline::{Milo, MiloError, SynthesisResult};
pub use report::{f2, pct, Table};

// Re-export the workspace API for single-dependency consumers.
pub use milo_compilers as compilers;
pub use milo_logic as logic;
pub use milo_microarch as microarch;
pub use milo_netlist as netlist;
pub use milo_opt as opt;
pub use milo_rules as rules;
pub use milo_techmap as techmap;
pub use milo_timing as timing;
