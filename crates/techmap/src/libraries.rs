//! The two shipped technology libraries.
//!
//! The paper's experiments used "an ECL gate-array library … by the
//! technology mapper to create technology-specific designs" (§7) from
//! Applied Micro Circuits Corporation. That library is proprietary, so we
//! ship a synthetic ECL gate-array library with realistic *relative*
//! characteristics — NOR/OR-centric, with low/standard/high power macro
//! variants (strategy 2 needs them) and per-pin delay skews (strategy 1
//! needs them) — plus a CMOS standard-cell library for contrast
//! (NAND/AND-centric, single power level, rich complex-cell set).

use crate::library::{cell, TechLibrary};
use milo_logic::TruthTable;
use milo_netlist::{CellFunction, GateFn, PowerLevel};

/// Relative speed/power scaling for the three ECL power grades.
const GRADES: [(PowerLevel, &str, f64, f64); 3] = [
    (PowerLevel::Low, "_L", 1.4, 0.5),
    (PowerLevel::Standard, "", 1.0, 1.0),
    (PowerLevel::High, "_H", 0.7, 1.6),
];

#[allow(clippy::too_many_arguments)]
fn push_graded(
    lib: &mut TechLibrary,
    family: &str,
    base_name: &str,
    function: CellFunction,
    area: f64,
    delay: f64,
    load_delay: f64,
    power: f64,
    max_fanout: u32,
    skew_pins: bool,
) {
    for (level, suffix, dscale, pscale) in GRADES {
        let name = format!("{base_name}{suffix}");
        let mut c = cell(
            &name,
            family,
            function.clone(),
            area,
            delay * dscale,
            load_delay * dscale,
            power * pscale,
            max_fanout,
            level,
        );
        if skew_pins {
            c.pin_delay = skewed_pin_delays(&function, delay * dscale);
        }
        lib.add(c);
    }
}

/// Input-pin delay skew: the first input is the fastest, later inputs are
/// progressively slower (Fig. 9a: "the 3-input AND gate has a different
/// delay from each input to the output").
fn skewed_pin_delays(function: &CellFunction, base: f64) -> Vec<f64> {
    let n = match function {
        CellFunction::Gate(_, n) => *n as usize,
        _ => return Vec::new(),
    };
    if n < 2 {
        return Vec::new();
    }
    (0..n).map(|i| base * (0.8 + 0.15 * i as f64)).collect()
}

fn add_storage_cells(lib: &mut TechLibrary, family: &str, area: f64, delay: f64, power: f64) {
    for set in [false, true] {
        for reset in [false, true] {
            for enable in [false, true] {
                let mut name = "DFF".to_owned();
                if set {
                    name.push('S');
                }
                if reset {
                    name.push('R');
                }
                if enable {
                    name.push('E');
                }
                let extra = f64::from(u8::from(set) + u8::from(reset) + u8::from(enable));
                lib.add(cell(
                    &name,
                    family,
                    CellFunction::Dff { set, reset, enable },
                    area + 0.2 * extra,
                    delay,
                    0.12,
                    power + 0.1 * extra,
                    8,
                    PowerLevel::Standard,
                ));
            }
        }
    }
    for set in [false, true] {
        for reset in [false, true] {
            let mut name = "LATCH".to_owned();
            if set {
                name.push('S');
            }
            if reset {
                name.push('R');
            }
            let extra = f64::from(u8::from(set) + u8::from(reset));
            lib.add(cell(
                &name,
                family,
                CellFunction::Latch { set, reset },
                area * 0.7 + 0.2 * extra,
                delay * 0.8,
                0.12,
                power * 0.8 + 0.1 * extra,
                8,
                PowerLevel::Standard,
            ));
        }
    }
}

fn add_msi_cells(lib: &mut TechLibrary, family: &str) {
    let f = family;
    // Multiplexors.
    lib.add(cell(
        "MUX2TO1",
        f,
        CellFunction::Mux { selects: 1 },
        1.6,
        0.9,
        0.1,
        0.9,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "MUX4TO1",
        f,
        CellFunction::Mux { selects: 2 },
        2.8,
        1.2,
        0.1,
        1.4,
        6,
        PowerLevel::Standard,
    ));
    // Decoders.
    lib.add(cell(
        "DEC1TO2",
        f,
        CellFunction::Decoder { inputs: 1 },
        1.2,
        0.8,
        0.1,
        0.8,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "DEC2TO4",
        f,
        CellFunction::Decoder { inputs: 2 },
        2.4,
        1.1,
        0.1,
        1.4,
        6,
        PowerLevel::Standard,
    ));
    // Adders: the CLA variant trades area/power for speed — the swap the
    // microarchitecture critic makes in Fig. 16.
    lib.add(cell(
        "ADD1",
        f,
        CellFunction::Adder {
            bits: 1,
            cla: false,
        },
        2.2,
        1.3,
        0.12,
        1.2,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "ADD4",
        f,
        CellFunction::Adder {
            bits: 4,
            cla: false,
        },
        7.0,
        3.4,
        0.12,
        3.6,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "ADD4CLA",
        f,
        CellFunction::Adder { bits: 4, cla: true },
        10.5,
        1.9,
        0.12,
        5.4,
        6,
        PowerLevel::Standard,
    ));
    // Comparators.
    lib.add(cell(
        "CMP2",
        f,
        CellFunction::Comparator { bits: 2 },
        3.0,
        1.5,
        0.12,
        1.6,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "CMP4",
        f,
        CellFunction::Comparator { bits: 4 },
        5.2,
        2.2,
        0.12,
        2.8,
        6,
        PowerLevel::Standard,
    ));
    // Counters.
    lib.add(cell(
        "CTR2",
        f,
        CellFunction::Counter { bits: 2 },
        5.0,
        1.6,
        0.12,
        2.6,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "CTR4",
        f,
        CellFunction::Counter { bits: 4 },
        9.0,
        2.0,
        0.12,
        4.6,
        6,
        PowerLevel::Standard,
    ));
    // Merged mux+FF macros (Fig. 18's hierarchy optimization target).
    lib.add(cell(
        "MXFF2",
        f,
        CellFunction::MuxDff { selects: 1 },
        2.4,
        1.4,
        0.12,
        1.6,
        8,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "MXFF4",
        f,
        CellFunction::MuxDff { selects: 2 },
        3.6,
        1.7,
        0.12,
        2.2,
        8,
        PowerLevel::Standard,
    ));
    // Constants.
    lib.add(cell(
        "TIE1",
        f,
        CellFunction::Const(true),
        0.1,
        0.0,
        0.0,
        0.05,
        32,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "TIE0",
        f,
        CellFunction::Const(false),
        0.1,
        0.0,
        0.0,
        0.05,
        32,
        PowerLevel::Standard,
    ));
}

/// AOI21: Y = !((A0 & A1) | A2).
fn aoi21() -> TruthTable {
    TruthTable::from_fn(3, |r| {
        let a = r & 1 == 1;
        let b = r >> 1 & 1 == 1;
        let c = r >> 2 & 1 == 1;
        !((a && b) || c)
    })
}

/// OAI21: Y = !((A0 | A1) & A2).
fn oai21() -> TruthTable {
    TruthTable::from_fn(3, |r| {
        let a = r & 1 == 1;
        let b = r >> 1 & 1 == 1;
        let c = r >> 2 & 1 == 1;
        !((a || b) && c)
    })
}

/// AOI22: Y = !((A0 & A1) | (A2 & A3)).
fn aoi22() -> TruthTable {
    TruthTable::from_fn(4, |r| {
        let a = r & 1 == 1;
        let b = r >> 1 & 1 == 1;
        let c = r >> 2 & 1 == 1;
        let d = r >> 3 & 1 == 1;
        !((a && b) || (c && d))
    })
}

/// The synthetic ECL gate-array library (family `ecl-ga`).
///
/// NOR/OR are the native, fastest gates; AND/NAND are slightly slower
/// composed macros. Basic gates come in three power grades and carry
/// per-pin delay skews. XNOR2 is deliberately absent: the mapper replaces
/// it with XOR2 + INV, exercising the "set of components" path of §6.2.
pub fn ecl_library() -> TechLibrary {
    // The library is immutable and cell storage is Arc-shared, so build
    // it once per process and hand out cheap clones.
    static ECL: std::sync::OnceLock<TechLibrary> = std::sync::OnceLock::new();
    ECL.get_or_init(build_ecl_library).clone()
}

fn build_ecl_library() -> TechLibrary {
    let mut lib = TechLibrary::new("ecl-ga");
    let f = "ecl-ga";
    push_graded(
        &mut lib,
        f,
        "INV",
        CellFunction::Gate(GateFn::Inv, 1),
        0.5,
        0.30,
        0.08,
        0.4,
        8,
        false,
    );
    push_graded(
        &mut lib,
        f,
        "BUF",
        CellFunction::Gate(GateFn::Buf, 1),
        0.5,
        0.30,
        0.06,
        0.4,
        12,
        false,
    );
    for n in 2..=4u8 {
        let nf = f64::from(n);
        push_graded(
            &mut lib,
            f,
            &format!("OR{n}"),
            CellFunction::Gate(GateFn::Or, n),
            0.8 + 0.2 * nf,
            0.45 + 0.05 * nf,
            0.08,
            0.5 + 0.1 * nf,
            6,
            true,
        );
        push_graded(
            &mut lib,
            f,
            &format!("NOR{n}"),
            CellFunction::Gate(GateFn::Nor, n),
            0.8 + 0.2 * nf,
            0.40 + 0.05 * nf,
            0.08,
            0.5 + 0.1 * nf,
            6,
            true,
        );
        push_graded(
            &mut lib,
            f,
            &format!("AND{n}"),
            CellFunction::Gate(GateFn::And, n),
            1.0 + 0.25 * nf,
            0.60 + 0.07 * nf,
            0.09,
            0.6 + 0.12 * nf,
            6,
            true,
        );
        push_graded(
            &mut lib,
            f,
            &format!("NAND{n}"),
            CellFunction::Gate(GateFn::Nand, n),
            1.0 + 0.25 * nf,
            0.55 + 0.07 * nf,
            0.09,
            0.6 + 0.12 * nf,
            6,
            true,
        );
    }
    push_graded(
        &mut lib,
        f,
        "XOR2",
        CellFunction::Gate(GateFn::Xor, 2),
        1.8,
        1.0,
        0.1,
        1.0,
        5,
        true,
    );
    // No XNOR2 — exercised as XOR2 + INV.
    lib.add(cell(
        "AOI21",
        f,
        CellFunction::Table(aoi21()),
        1.6,
        0.75,
        0.09,
        0.9,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "OAI21",
        f,
        CellFunction::Table(oai21()),
        1.6,
        0.70,
        0.09,
        0.9,
        6,
        PowerLevel::Standard,
    ));
    lib.add(cell(
        "AOI22",
        f,
        CellFunction::Table(aoi22()),
        2.0,
        0.85,
        0.09,
        1.1,
        6,
        PowerLevel::Standard,
    ));
    add_storage_cells(&mut lib, f, 2.0, 1.1, 1.2);
    add_msi_cells(&mut lib, f);
    lib
}

/// The synthetic CMOS standard-cell library (family `cmos-sc`).
///
/// NAND/NOR are native; there is a single power grade (strategy 2 does not
/// apply to CMOS, per §4.1.2), and complex AOI cells are cheap.
pub fn cmos_library() -> TechLibrary {
    static CMOS: std::sync::OnceLock<TechLibrary> = std::sync::OnceLock::new();
    CMOS.get_or_init(build_cmos_library).clone()
}

fn build_cmos_library() -> TechLibrary {
    let mut lib = TechLibrary::new("cmos-sc");
    let f = "cmos-sc";
    let std = PowerLevel::Standard;
    lib.add(cell(
        "INV",
        f,
        CellFunction::Gate(GateFn::Inv, 1),
        0.5,
        0.20,
        0.10,
        0.10,
        10,
        std,
    ));
    lib.add(cell(
        "BUF",
        f,
        CellFunction::Gate(GateFn::Buf, 1),
        0.7,
        0.35,
        0.07,
        0.15,
        16,
        std,
    ));
    for n in 2..=4u8 {
        let nf = f64::from(n);
        let mut nand = cell(
            &format!("NAND{n}"),
            f,
            CellFunction::Gate(GateFn::Nand, n),
            0.7 + 0.2 * nf,
            0.30 + 0.08 * nf,
            0.1,
            0.08 + 0.03 * nf,
            8,
            std,
        );
        nand.pin_delay = skewed_pin_delays(&nand.function.clone(), nand.delay);
        lib.add(nand);
        let mut nor = cell(
            &format!("NOR{n}"),
            f,
            CellFunction::Gate(GateFn::Nor, n),
            0.7 + 0.25 * nf,
            0.35 + 0.10 * nf,
            0.1,
            0.08 + 0.03 * nf,
            8,
            std,
        );
        nor.pin_delay = skewed_pin_delays(&nor.function.clone(), nor.delay);
        lib.add(nor);
        lib.add(cell(
            &format!("AND{n}"),
            f,
            CellFunction::Gate(GateFn::And, n),
            0.9 + 0.25 * nf,
            0.45 + 0.09 * nf,
            0.1,
            0.10 + 0.03 * nf,
            8,
            std,
        ));
        lib.add(cell(
            &format!("OR{n}"),
            f,
            CellFunction::Gate(GateFn::Or, n),
            0.9 + 0.28 * nf,
            0.50 + 0.10 * nf,
            0.1,
            0.10 + 0.03 * nf,
            8,
            std,
        ));
    }
    lib.add(cell(
        "XOR2",
        f,
        CellFunction::Gate(GateFn::Xor, 2),
        1.6,
        0.70,
        0.1,
        0.25,
        6,
        std,
    ));
    lib.add(cell(
        "XNOR2",
        f,
        CellFunction::Gate(GateFn::Xnor, 2),
        1.6,
        0.70,
        0.1,
        0.25,
        6,
        std,
    ));
    lib.add(cell(
        "AOI21",
        f,
        CellFunction::Table(aoi21()),
        1.1,
        0.45,
        0.1,
        0.15,
        8,
        std,
    ));
    lib.add(cell(
        "OAI21",
        f,
        CellFunction::Table(oai21()),
        1.1,
        0.45,
        0.1,
        0.15,
        8,
        std,
    ));
    lib.add(cell(
        "AOI22",
        f,
        CellFunction::Table(aoi22()),
        1.4,
        0.55,
        0.1,
        0.18,
        8,
        std,
    ));
    add_storage_cells(&mut lib, f, 1.8, 0.9, 0.4);
    add_msi_cells(&mut lib, f);
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecl_has_power_grades() {
        let lib = ecl_library();
        let nor = lib.get("NOR2").unwrap();
        assert!(lib.faster_variant(nor).is_some());
        assert!(lib.slower_variant(nor).is_some());
        let fast = lib.faster_variant(nor).unwrap();
        assert!(fast.delay < nor.delay && fast.power > nor.power);
    }

    #[test]
    fn cmos_has_single_grade() {
        let lib = cmos_library();
        let nand = lib.get("NAND2").unwrap();
        assert!(lib.faster_variant(nand).is_none(), "strategy 2 is ECL-only");
    }

    #[test]
    fn ecl_lacks_xnor() {
        let lib = ecl_library();
        assert!(lib.get("XNOR2").is_none());
        assert!(lib.get("XOR2").is_some());
    }

    #[test]
    fn nor_is_fastest_simple_gate_in_ecl() {
        let lib = ecl_library();
        let nor = lib.get("NOR2").unwrap();
        let nand = lib.get("NAND2").unwrap();
        assert!(nor.delay < nand.delay, "ECL favours NOR/OR");
    }

    #[test]
    fn cla_trades_area_for_speed() {
        let lib = ecl_library();
        let rpl = lib.get("ADD4").unwrap();
        let cla = lib.get("ADD4CLA").unwrap();
        assert!(cla.delay < rpl.delay);
        assert!(cla.area > rpl.area);
        assert!(cla.power > rpl.power);
    }

    #[test]
    fn storage_cells_complete() {
        for lib in [ecl_library(), cmos_library()] {
            for name in [
                "DFF", "DFFS", "DFFR", "DFFE", "DFFSR", "DFFSRE", "LATCH", "LATCHSR",
            ] {
                assert!(lib.get(name).is_some(), "{} missing {name}", lib.name);
            }
        }
    }

    #[test]
    fn pin_delays_skewed() {
        let lib = ecl_library();
        let and3 = lib.get("AND3").unwrap();
        assert_eq!(and3.pin_delay.len(), 3);
        assert!(and3.pin_delay[0] < and3.pin_delay[2], "Fig. 9a skew");
    }

    #[test]
    fn aoi_tables_correct() {
        assert!(aoi21().eval(0b000));
        assert!(!aoi21().eval(0b011));
        assert!(!aoi21().eval(0b100));
        assert!(oai21().eval(0b000));
        assert!(!oai21().eval(0b101));
        assert!(aoi22().eval(0b0000));
        assert!(!aoi22().eval(0b0011));
        assert!(!aoi22().eval(0b1100));
    }
}
