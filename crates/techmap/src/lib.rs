//! # milo-techmap
//!
//! Technology libraries and mapping for the MILO reproduction (§6.2):
//!
//! * [`TechLibrary`] plus two shipped families — a synthetic ECL
//!   gate-array library ([`ecl_library`], standing in for the proprietary
//!   AMCC library of §7) and a CMOS standard-cell library
//!   ([`cmos_library`]);
//! * the lookup-table mapper [`map_netlist`] that replaces generic
//!   components with technology cells (or small cell sets);
//! * a DAGON-style tree-covering binder [`dagon_map`] — the paper's
//!   "algorithms only" baseline (§2.2.3);
//! * electric-rule repair [`enforce_fanout`] for the electric critic.
//!
//! # Examples
//!
//! ```
//! use milo_techmap::{ecl_library, map_netlist};
//! use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist, PinDir};
//!
//! let mut nl = Netlist::new("inv");
//! let a = nl.add_net("a");
//! let y = nl.add_net("y");
//! let g = nl.add_component("g", ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)));
//! nl.connect_named(g, "A0", a)?;
//! nl.connect_named(g, "Y", y)?;
//! nl.add_port("a", PinDir::In, a);
//! nl.add_port("y", PinDir::Out, y);
//! let mapped = map_netlist(&nl, &ecl_library())?;
//! assert_eq!(mapped.component_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod dagon;
mod electric;
mod libraries;
mod library;
mod mapper;
mod nandnor;

pub use dagon::{dagon_map, Objective};
pub use electric::enforce_fanout;
pub use libraries::{cmos_library, ecl_library};
pub use library::TechLibrary;
pub use mapper::{map_netlist, MapError};
pub use nandnor::{simplify_inverters, to_universal, UniversalGate};
