//! The LSS-style NAND/NOR description level (§2.1.3): "depending on the
//! technology, the design will be converted to one consisting entirely of
//! generic NAND and NOR gates. … the translator that produces this
//! description is achieved through naive transformations that may produce
//! unnecessary NANDs and NORs. These 'extra' gates are removed by the
//! optimizer at this level."
//!
//! MILO itself skips this level (it keeps MSI structure), but the paper
//! discusses it at length as LSS's approach; having the pass lets the
//! bench harness and users compare an LSS-like gate-universal flow with
//! MILO's macro-preserving flow on the same circuits.

use crate::mapper::MapError;
use milo_netlist::{ComponentId, ComponentKind, GateFn, GenericMacro, NetId, Netlist, PinDir};

/// The target gate family for the conversion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UniversalGate {
    /// Convert to NAND gates (CMOS-natural).
    Nand,
    /// Convert to NOR gates (ECL-natural).
    Nor,
}

/// Converts every combinational generic gate of `nl` into the chosen
/// universal gate family plus inverters (naively, as LSS's translator
/// does). Non-gate components (storage, MSI macros) pass through
/// unchanged. Follow with [`simplify_inverters`] to remove the
/// "unnecessary NANDs and NORs".
///
/// # Errors
///
/// Propagates netlist manipulation failures.
pub fn to_universal(nl: &Netlist, family: UniversalGate) -> Result<Netlist, MapError> {
    let mut out = nl.clone();
    let ids: Vec<ComponentId> = out.component_ids().collect();
    for id in ids {
        let ComponentKind::Generic(GenericMacro::Gate(f, n)) = out.component(id)?.kind else {
            continue;
        };
        convert_gate(&mut out, id, f, n, family)?;
    }
    Ok(out)
}

fn add_gate(out: &mut Netlist, f: GateFn, inputs: &[NetId], name: &str) -> Result<NetId, MapError> {
    let g = out.add_component(
        name,
        ComponentKind::Generic(GenericMacro::Gate(f, inputs.len() as u8)),
    );
    for (i, net) in inputs.iter().enumerate() {
        out.connect_named(g, &format!("A{i}"), *net)?;
    }
    let y = out.add_net(format!("{name}_y"));
    out.connect_named(g, "Y", y)?;
    Ok(y)
}

fn add_gate_to(
    out: &mut Netlist,
    f: GateFn,
    inputs: &[NetId],
    y: NetId,
    name: &str,
) -> Result<(), MapError> {
    let g = out.add_component(
        name,
        ComponentKind::Generic(GenericMacro::Gate(f, inputs.len() as u8)),
    );
    for (i, net) in inputs.iter().enumerate() {
        out.connect_named(g, &format!("A{i}"), *net)?;
    }
    out.connect_named(g, "Y", y)?;
    Ok(())
}

fn convert_gate(
    out: &mut Netlist,
    id: ComponentId,
    f: GateFn,
    n: u8,
    family: UniversalGate,
) -> Result<(), MapError> {
    let comp = out.component(id)?;
    let name = comp.name.clone();
    let ins: Vec<NetId> = comp
        .pins
        .iter()
        .filter(|p| p.dir == PinDir::In)
        .filter_map(|p| p.net)
        .collect();
    let y = comp
        .pins
        .iter()
        .find(|p| p.dir == PinDir::Out)
        .and_then(|p| p.net)
        .ok_or_else(|| MapError::Unmapped(format!("{name} has no output net")))?;
    let (base, inv_of) = match family {
        UniversalGate::Nand => (GateFn::Nand, GateFn::Nand), // INV = NAND1? use NAND with doubled input
        UniversalGate::Nor => (GateFn::Nor, GateFn::Nor),
    };
    let _ = inv_of;
    // Inverter in the universal family: a 2-input gate with tied inputs.
    let mk_inv = |out: &mut Netlist, x: NetId, tag: &str| -> Result<NetId, MapError> {
        add_gate(out, base, &[x, x], tag)
    };
    let mk_inv_to = |out: &mut Netlist, x: NetId, y: NetId, tag: &str| -> Result<(), MapError> {
        add_gate_to(out, base, &[x, x], y, tag)
    };
    let _ = n;
    out.remove_component(id)?;
    match (f, family) {
        // Native matches.
        (GateFn::Nand, UniversalGate::Nand) | (GateFn::Nor, UniversalGate::Nor) => {
            add_gate_to(out, base, &ins, y, &format!("{name}_u"))?;
        }
        (GateFn::And, UniversalGate::Nand) | (GateFn::Or, UniversalGate::Nor) => {
            let t = add_gate(out, base, &ins, &format!("{name}_u"))?;
            mk_inv_to(out, t, y, &format!("{name}_i"))?;
        }
        // De Morgan: OR(a..) = NAND(!a..); AND(a..) = NOR(!a..).
        (GateFn::Or, UniversalGate::Nand) | (GateFn::And, UniversalGate::Nor) => {
            let inverted: Vec<NetId> = ins
                .iter()
                .enumerate()
                .map(|(i, &x)| mk_inv(out, x, &format!("{name}_n{i}")))
                .collect::<Result<_, _>>()?;
            add_gate_to(out, base, &inverted, y, &format!("{name}_u"))?;
        }
        (GateFn::Nor, UniversalGate::Nand) | (GateFn::Nand, UniversalGate::Nor) => {
            let inverted: Vec<NetId> = ins
                .iter()
                .enumerate()
                .map(|(i, &x)| mk_inv(out, x, &format!("{name}_n{i}")))
                .collect::<Result<_, _>>()?;
            let t = add_gate(out, base, &inverted, &format!("{name}_u"))?;
            mk_inv_to(out, t, y, &format!("{name}_i"))?;
        }
        (GateFn::Inv, _) => {
            mk_inv_to(out, ins[0], y, &format!("{name}_u"))?;
        }
        (GateFn::Buf, _) => {
            let t = mk_inv(out, ins[0], &format!("{name}_u"))?;
            mk_inv_to(out, t, y, &format!("{name}_i"))?;
        }
        (GateFn::Xor | GateFn::Xnor, _) => {
            // Chain 2-input XORs, each as the 4-gate universal structure.
            let mut acc = ins[0];
            for (k, &b) in ins.iter().enumerate().skip(1) {
                let last = k == ins.len() - 1 && f == GateFn::Xor;
                let target = if last { Some(y) } else { None };
                acc = xor2_universal(out, acc, b, target, family, &format!("{name}_x{k}"))?;
            }
            if f == GateFn::Xnor {
                mk_inv_to(out, acc, y, &format!("{name}_i"))?;
            }
        }
    }
    Ok(())
}

/// 2-input XOR in the universal family.
/// NAND form: xor = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b))).
/// NOR form:  xor = NOR(NOR(a, NOR(a,b)), NOR(b, NOR(a,b))) is XNOR-ish;
/// use xor = INV(xnor) built from NORs.
fn xor2_universal(
    out: &mut Netlist,
    a: NetId,
    b: NetId,
    target: Option<NetId>,
    family: UniversalGate,
    tag: &str,
) -> Result<NetId, MapError> {
    let base = match family {
        UniversalGate::Nand => GateFn::Nand,
        UniversalGate::Nor => GateFn::Nor,
    };
    match family {
        UniversalGate::Nand => {
            let ab = add_gate(out, base, &[a, b], &format!("{tag}_m"))?;
            let p = add_gate(out, base, &[a, ab], &format!("{tag}_p"))?;
            let q = add_gate(out, base, &[b, ab], &format!("{tag}_q"))?;
            match target {
                Some(y) => {
                    add_gate_to(out, base, &[p, q], y, &format!("{tag}_r"))?;
                    Ok(y)
                }
                None => add_gate(out, base, &[p, q], &format!("{tag}_r")),
            }
        }
        UniversalGate::Nor => {
            // xnor = NOR(NOR(a,b), AND(a,b)); with NORs:
            // AND(a,b) = NOR(!a,!b); xor = !xnor.
            let na = add_gate(out, base, &[a, a], &format!("{tag}_na"))?;
            let nb = add_gate(out, base, &[b, b], &format!("{tag}_nb"))?;
            let and_ab = add_gate(out, base, &[na, nb], &format!("{tag}_and"))?;
            let nor_ab = add_gate(out, base, &[a, b], &format!("{tag}_nor"))?;
            let xnor = add_gate(out, base, &[nor_ab, and_ab], &format!("{tag}_xn"))?;
            // xnor here = NOR(nor_ab, and_ab) = !(xnor)... check: xor =
            // !(a==b) = !( !(a|b) | (a&b) ) = NOR(nor_ab, and_ab). So this
            // IS xor directly.
            match target {
                Some(y) => {
                    // Re-drive y from the xor net via inverter pair-free
                    // move: rebuild with target.
                    let inv1 = add_gate(out, base, &[xnor, xnor], &format!("{tag}_i1"))?;
                    add_gate_to(out, base, &[inv1, inv1], y, &format!("{tag}_i2"))?;
                    Ok(y)
                }
                None => Ok(xnor),
            }
        }
    }
}

/// Removes the "unnecessary" gates the naive translation produces:
/// tied-input inverter pairs in series (INV(INV(x)) → x). Returns the
/// number of pairs removed.
pub fn simplify_inverters(nl: &mut Netlist) -> usize {
    fn is_universal_inv(nl: &Netlist, id: ComponentId) -> Option<(NetId, NetId)> {
        let comp = nl.component(id).ok()?;
        let ComponentKind::Generic(GenericMacro::Gate(f, 2)) = comp.kind else {
            return None;
        };
        if !matches!(f, GateFn::Nand | GateFn::Nor) {
            return None;
        }
        let ins: Vec<NetId> = comp
            .pins
            .iter()
            .filter(|p| p.dir == PinDir::In)
            .filter_map(|p| p.net)
            .collect();
        if ins.len() != 2 || ins[0] != ins[1] {
            return None;
        }
        let y = comp
            .pins
            .iter()
            .find(|p| p.dir == PinDir::Out)
            .and_then(|p| p.net)?;
        Some((ins[0], y))
    }
    let mut removed = 0usize;
    loop {
        let mut victim = None;
        for id in nl.component_ids() {
            let Some((input, mid)) = is_universal_inv(nl, id) else {
                continue;
            };
            if nl.ports().iter().any(|p| p.net == mid) {
                continue;
            }
            // All loads of the middle net must be the tied inputs of one
            // follower (a tied-input inverter loads its net twice).
            let loads = nl.loads(mid);
            let Some(first) = loads.first().copied() else {
                continue;
            };
            if loads.iter().any(|p| p.component != first.component) {
                continue;
            }
            let load = first;
            let Some((_, out)) = is_universal_inv(nl, load.component) else {
                continue;
            };
            if nl.ports().iter().any(|p| p.net == out) {
                continue;
            }
            victim = Some((id, load.component, input, out));
            break;
        }
        let Some((first, second, input, out)) = victim else {
            break;
        };
        nl.remove_component(first).expect("live");
        nl.remove_component(second).expect("live");
        let loads = nl.loads(out);
        for pin in loads {
            nl.disconnect(pin).expect("connected");
            nl.connect(pin, input).expect("fresh");
        }
        removed += 1;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_circuits_free::gate_soup;
    use milo_compilers::verify::check_comb_equivalence;

    /// Local builder (avoids a circular dev-dependency on milo-circuits).
    mod milo_circuits_free {
        use milo_netlist::{ComponentKind, GateFn, GenericMacro, Netlist, PinDir};

        pub fn gate_soup() -> Netlist {
            let mut nl = Netlist::new("soup");
            let a = nl.add_net("a");
            let b = nl.add_net("b");
            let c = nl.add_net("c");
            for (n, net) in [("a", a), ("b", b), ("c", c)] {
                nl.add_port(n, PinDir::In, net);
            }
            let mut outs = Vec::new();
            for (i, (f, n)) in [
                (GateFn::And, 2),
                (GateFn::Or, 3),
                (GateFn::Nand, 2),
                (GateFn::Nor, 3),
                (GateFn::Xor, 2),
                (GateFn::Xnor, 3),
                (GateFn::Inv, 1),
                (GateFn::Buf, 1),
            ]
            .into_iter()
            .enumerate()
            {
                let g = nl.add_component(
                    format!("g{i}"),
                    ComponentKind::Generic(GenericMacro::Gate(f, n)),
                );
                for (k, net) in [a, b, c].iter().take(n as usize).enumerate() {
                    nl.connect_named(g, &format!("A{k}"), *net).unwrap();
                }
                let y = nl.add_net(format!("y{i}"));
                nl.connect_named(g, "Y", y).unwrap();
                nl.add_port(format!("y{i}"), PinDir::Out, y);
                outs.push(y);
            }
            nl
        }
    }

    #[test]
    fn nand_conversion_preserves_function() {
        let nl = gate_soup();
        let converted = to_universal(&nl, UniversalGate::Nand).unwrap();
        // Only NAND gates remain among combinational gates.
        for id in converted.component_ids() {
            if let Ok(c) = converted.component(id) {
                if let ComponentKind::Generic(GenericMacro::Gate(f, _)) = c.kind {
                    assert_eq!(f, GateFn::Nand, "{c:?}");
                }
            }
        }
        check_comb_equivalence(&nl, &converted, 0).unwrap();
    }

    #[test]
    fn nor_conversion_preserves_function() {
        let nl = gate_soup();
        let converted = to_universal(&nl, UniversalGate::Nor).unwrap();
        for id in converted.component_ids() {
            if let Ok(c) = converted.component(id) {
                if let ComponentKind::Generic(GenericMacro::Gate(f, _)) = c.kind {
                    assert_eq!(f, GateFn::Nor, "{c:?}");
                }
            }
        }
        check_comb_equivalence(&nl, &converted, 0).unwrap();
    }

    #[test]
    fn simplify_removes_naive_pairs() {
        // LSS: "naive transformations that may produce unnecessary NANDs
        // and NORs. These extra gates are removed by the optimizer."
        // a -> BUF -> INV -> y converts to a chain of three tied-input
        // NANDs; the leading pair is removable.
        use milo_netlist::{ComponentKind, GenericMacro, Netlist, PinDir};
        let mut nl = Netlist::new("chain");
        let a = nl.add_net("a");
        nl.add_port("a", PinDir::In, a);
        let b = nl.add_component(
            "b",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
        );
        nl.connect_named(b, "A0", a).unwrap();
        let m = nl.add_net("m");
        nl.connect_named(b, "Y", m).unwrap();
        let i = nl.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(i, "A0", m).unwrap();
        let y = nl.add_net("y");
        nl.connect_named(i, "Y", y).unwrap();
        nl.add_port("y", PinDir::Out, y);

        let mut converted = to_universal(&nl, UniversalGate::Nand).unwrap();
        let before = converted.component_count();
        assert_eq!(before, 3, "BUF -> two NANDs, INV -> one NAND");
        let removed = simplify_inverters(&mut converted);
        assert_eq!(removed, 1);
        assert_eq!(converted.component_count(), 1);
        check_comb_equivalence(&nl, &converted, 0).unwrap();
    }
}
