//! Electric-rule repair: buffer insertion for fanout violations.
//!
//! "During the conversion process, various design rules may be violated
//! (such as a component's fanout). These must be detected and corrected by
//! the electric critic" (§6.2). Detection lives in
//! [`milo_netlist::validate`]; this module performs the correction.

use crate::library::TechLibrary;
use crate::mapper::MapError;
use milo_netlist::{ComponentKind, Netlist};

/// Splits over-loaded nets by inserting buffers from `lib` until every net
/// respects its driver's `max_fanout`. Returns the number of buffers
/// inserted.
///
/// # Errors
///
/// [`MapError::NoCell`] if the library has no standard buffer cell.
pub fn enforce_fanout(nl: &mut Netlist, lib: &TechLibrary) -> Result<usize, MapError> {
    let buf_cell = lib
        .buffer()
        .ok_or_else(|| MapError::NoCell("BUF".to_owned()))?
        .clone();
    let mut inserted = 0usize;
    // Iterate until a fixed point: buffers themselves add new nets.
    loop {
        let mut violation = None;
        for net in nl.net_ids() {
            let Some(driver) = nl.driver(net) else {
                continue;
            };
            let Ok(comp) = nl.component(driver.component) else {
                continue;
            };
            let ComponentKind::Tech(cell) = &comp.kind else {
                continue;
            };
            let limit = cell.max_fanout as usize;
            if nl.fanout(net) > limit {
                violation = Some((net, limit));
                break;
            }
        }
        let Some((net, limit)) = violation else { break };
        // Keep (limit - 1) loads on the original net, move the rest behind
        // a buffer (which becomes the limit-th load).
        let loads = nl.loads(net);
        let moved: Vec<_> = loads.into_iter().skip(limit.saturating_sub(1)).collect();
        let buf = nl.add_component(
            format!("fobuf{inserted}"),
            ComponentKind::Tech(buf_cell.clone()),
        );
        nl.connect_named(buf, "A0", net)?;
        let out = nl.add_net(format!("fobuf{inserted}_y"));
        nl.connect_named(buf, "Y", out)?;
        for pin in moved {
            nl.disconnect(pin)?;
            nl.connect(pin, out)?;
        }
        inserted += 1;
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libraries::cmos_library;
    use crate::mapper::map_netlist;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::{validate, GateFn, GenericMacro, PinDir, Violation};

    /// One inverter driving `n` AND gates.
    fn high_fanout(n: usize) -> Netlist {
        let mut nl = Netlist::new("fo");
        let a = nl.add_net("a");
        let mid = nl.add_net("mid");
        let inv = nl.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(inv, "A0", a).unwrap();
        nl.connect_named(inv, "Y", mid).unwrap();
        nl.add_port("a", PinDir::In, a);
        for k in 0..n {
            let g = nl.add_component(
                format!("g{k}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
            );
            nl.connect_named(g, "A0", mid).unwrap();
            let y = nl.add_net(format!("y{k}"));
            nl.connect_named(g, "Y", y).unwrap();
            nl.add_port(format!("y{k}"), PinDir::Out, y);
        }
        nl
    }

    #[test]
    fn fixes_fanout_violation() {
        let lib = cmos_library();
        let nl = high_fanout(25);
        let mut mapped = map_netlist(&nl, &lib).unwrap();
        let before = validate(&mapped, true);
        assert!(before
            .iter()
            .any(|v| matches!(v, Violation::FanoutExceeded { .. })));
        let inserted = enforce_fanout(&mut mapped, &lib).unwrap();
        assert!(inserted >= 1);
        let after = validate(&mapped, true);
        assert!(
            !after
                .iter()
                .any(|v| matches!(v, Violation::FanoutExceeded { .. })),
            "still violated: {after:?}"
        );
        // Behaviour unchanged.
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }

    #[test]
    fn clean_netlist_untouched() {
        let lib = cmos_library();
        let nl = high_fanout(3);
        let mut mapped = map_netlist(&nl, &lib).unwrap();
        assert_eq!(enforce_fanout(&mut mapped, &lib).unwrap(), 0);
    }
}
