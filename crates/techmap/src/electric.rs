//! Electric-rule repair: buffer insertion for fanout violations.
//!
//! "During the conversion process, various design rules may be violated
//! (such as a component's fanout). These must be detected and corrected by
//! the electric critic" (§6.2). Detection lives in
//! [`milo_netlist::validate`]; this module performs the correction.

use crate::library::TechLibrary;
use crate::mapper::MapError;
use milo_netlist::{ComponentKind, Netlist, PinDir};
use std::collections::VecDeque;

/// Splits over-loaded nets by inserting buffers from `lib` until every net
/// respects its driver's `max_fanout`. Returns the number of buffers
/// inserted.
///
/// Output ports count toward fanout but cannot be moved behind a buffer
/// (the net *is* the design interface), so each port permanently consumes
/// one slot of its net's budget. A net whose out-port count alone reaches
/// the limit is left for [`milo_netlist::validate`] to report — buffering
/// its loads could never clear the violation.
///
/// # Errors
///
/// [`MapError::NoCell`] if the library has no standard buffer cell.
pub fn enforce_fanout(nl: &mut Netlist, lib: &TechLibrary) -> Result<usize, MapError> {
    let buf_cell = lib
        .buffer()
        .ok_or_else(|| MapError::NoCell("BUF".to_owned()))?
        .clone();
    // Out ports are fixed sinks; count them per net once (ports do not
    // change below, and freshly inserted buffer nets carry none).
    let mut out_ports = vec![0usize; nl.net_slot_count()];
    for p in nl.ports() {
        if p.dir == PinDir::Out {
            out_ports[p.net.index()] += 1;
        }
    }
    let mut inserted = 0usize;
    // Worklist: every net once, plus each freshly inserted buffer net —
    // whose load set may itself exceed the buffer's limit, extending the
    // chain. A repaired net never re-violates, so no full rescans.
    let mut pending: VecDeque<_> = nl.net_ids().collect();
    while let Some(net) = pending.pop_front() {
        let Some(driver) = nl.driver(net) else {
            continue;
        };
        let Ok(comp) = nl.component(driver.component) else {
            continue;
        };
        let ComponentKind::Tech(cell) = &comp.kind else {
            continue;
        };
        let limit = cell.max_fanout as usize;
        let ports = out_ports.get(net.index()).copied().unwrap_or(0);
        if nl.load_count(net) + ports <= limit {
            continue;
        }
        // Budget: the immovable ports each take a slot, the buffer's own
        // input takes another; whatever is left stays on the net.
        let Some(keep) = limit.checked_sub(ports + 1) else {
            continue; // ports alone saturate the limit: unrepairable here
        };
        let moved: Vec<_> = nl.loads(net).into_iter().skip(keep).collect();
        let buf = nl.add_component(
            format!("fobuf{inserted}"),
            ComponentKind::Tech(buf_cell.clone()),
        );
        nl.connect_named(buf, "A0", net)?;
        let out = nl.add_net(format!("fobuf{inserted}_y"));
        nl.connect_named(buf, "Y", out)?;
        for pin in moved {
            nl.disconnect(pin)?;
            nl.connect(pin, out)?;
        }
        inserted += 1;
        pending.push_back(out);
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libraries::cmos_library;
    use crate::mapper::map_netlist;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::{validate, GateFn, GenericMacro, PinDir, Violation};

    /// One inverter driving `n` AND gates.
    fn high_fanout(n: usize) -> Netlist {
        let mut nl = Netlist::new("fo");
        let a = nl.add_net("a");
        let mid = nl.add_net("mid");
        let inv = nl.add_component(
            "i",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Inv, 1)),
        );
        nl.connect_named(inv, "A0", a).unwrap();
        nl.connect_named(inv, "Y", mid).unwrap();
        nl.add_port("a", PinDir::In, a);
        for k in 0..n {
            let g = nl.add_component(
                format!("g{k}"),
                ComponentKind::Generic(GenericMacro::Gate(GateFn::Buf, 1)),
            );
            nl.connect_named(g, "A0", mid).unwrap();
            let y = nl.add_net(format!("y{k}"));
            nl.connect_named(g, "Y", y).unwrap();
            nl.add_port(format!("y{k}"), PinDir::Out, y);
        }
        nl
    }

    #[test]
    fn fixes_fanout_violation() {
        let lib = cmos_library();
        let nl = high_fanout(25);
        let mut mapped = map_netlist(&nl, &lib).unwrap();
        let before = validate(&mapped, true);
        assert!(before
            .iter()
            .any(|v| matches!(v, Violation::FanoutExceeded { .. })));
        let inserted = enforce_fanout(&mut mapped, &lib).unwrap();
        assert!(inserted >= 1);
        let after = validate(&mapped, true);
        assert!(
            !after
                .iter()
                .any(|v| matches!(v, Violation::FanoutExceeded { .. })),
            "still violated: {after:?}"
        );
        // Behaviour unchanged.
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }

    #[test]
    fn clean_netlist_untouched() {
        let lib = cmos_library();
        let nl = high_fanout(3);
        let mut mapped = map_netlist(&nl, &lib).unwrap();
        assert_eq!(enforce_fanout(&mut mapped, &lib).unwrap(), 0);
    }

    /// Regression: a violating net that also carries an out port used to
    /// loop forever — the port counts toward fanout but the repair only
    /// moved component loads, and each inserted buffer *added* a load, so
    /// the net never dropped back under its limit.
    #[test]
    fn port_bound_violation_converges() {
        let lib = cmos_library();
        let mut nl = high_fanout(25);
        // Bind an out port directly to the overloaded net.
        let over = nl
            .net_ids()
            .find(|&n| nl.fanout(n) > 20)
            .expect("the inverter output is overloaded");
        nl.add_port("probe", PinDir::Out, over);
        let mut mapped = map_netlist(&nl, &lib).unwrap();
        let inserted = enforce_fanout(&mut mapped, &lib).unwrap();
        assert!(inserted >= 1);
        let after = validate(&mapped, true);
        assert!(
            !after
                .iter()
                .any(|v| matches!(v, Violation::FanoutExceeded { .. })),
            "still violated: {after:?}"
        );
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }
}
