//! Technology libraries: named collections of [`TechCell`]s with lookup
//! by name, by function, and by power level.

use milo_netlist::{CellFunction, GateFn, PowerLevel, TechCell};
use std::collections::HashMap;
use std::sync::Arc;

/// A technology library (e.g. an ECL gate-array or CMOS standard-cell
/// family).
///
/// Cell storage is shared copy-on-write ([`Arc`]): cloning a library —
/// which the critics and strategies do freely — is a reference-count
/// bump, and [`TechLibrary::add`] transparently unshares when needed.
///
/// # Examples
///
/// ```
/// use milo_techmap::ecl_library;
///
/// let lib = ecl_library();
/// let nor2 = lib.get("NOR2").expect("ECL has NOR2");
/// assert!(nor2.delay > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct TechLibrary {
    /// Library family name.
    pub name: String,
    inner: Arc<LibraryInner>,
}

#[derive(Clone, Debug, Default)]
struct LibraryInner {
    cells: Vec<TechCell>,
    index: HashMap<String, usize>,
}

impl TechLibrary {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            inner: Arc::new(LibraryInner::default()),
        }
    }

    /// Adds a cell. Replaces any cell with the same name.
    pub fn add(&mut self, cell: TechCell) {
        let inner = Arc::make_mut(&mut self.inner);
        match inner.index.get(&cell.name) {
            Some(&i) => inner.cells[i] = cell,
            None => {
                inner.index.insert(cell.name.clone(), inner.cells.len());
                inner.cells.push(cell);
            }
        }
    }

    /// Looks a cell up by name.
    pub fn get(&self, name: &str) -> Option<&TechCell> {
        self.inner.index.get(name).map(|&i| &self.inner.cells[i])
    }

    /// All cells.
    pub fn cells(&self) -> &[TechCell] {
        &self.inner.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.inner.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.cells.is_empty()
    }

    /// Cells computing exactly `function`, any power level.
    pub fn cells_with_function(&self, function: &CellFunction) -> Vec<&TechCell> {
        self.inner
            .cells
            .iter()
            .filter(|c| &c.function == function)
            .collect()
    }

    /// The cell computing `function` at the given power level, if any.
    pub fn cell_at_level(&self, function: &CellFunction, level: PowerLevel) -> Option<&TechCell> {
        self.cells_with_function(function)
            .into_iter()
            .find(|c| c.level == level)
    }

    /// Power-level alternatives of the same function as `cell`
    /// (including `cell` itself), sorted by level.
    pub fn power_variants(&self, cell: &TechCell) -> Vec<&TechCell> {
        let mut v: Vec<&TechCell> = self.cells_with_function(&cell.function);
        v.sort_by_key(|c| c.level);
        v
    }

    /// A higher-power (faster) variant of `cell`, if one exists —
    /// strategy 2 of §4.1.2 ("only applicable to ECL logic").
    pub fn faster_variant(&self, cell: &TechCell) -> Option<&TechCell> {
        self.cells_with_function(&cell.function)
            .into_iter()
            .filter(|c| c.level > cell.level && c.delay < cell.delay)
            .min_by(|a, b| a.delay.partial_cmp(&b.delay).expect("delays are not NaN"))
    }

    /// A lower-power (slower) variant of `cell`, if one exists — used by
    /// the power critic on slack paths.
    pub fn slower_variant(&self, cell: &TechCell) -> Option<&TechCell> {
        self.cells_with_function(&cell.function)
            .into_iter()
            .filter(|c| c.level < cell.level && c.power < cell.power)
            .max_by(|a, b| a.delay.partial_cmp(&b.delay).expect("delays are not NaN"))
    }

    /// Simple gate cells (used by DAGON pattern generation).
    pub fn gate_cells(&self) -> impl Iterator<Item = &TechCell> {
        self.inner.cells.iter().filter(|c| {
            matches!(c.function, CellFunction::Gate(..)) && c.level == PowerLevel::Standard
        })
    }

    /// The standard-power buffer cell, used by the electric critic to fix
    /// fanout violations.
    pub fn buffer(&self) -> Option<&TechCell> {
        self.cell_at_level(&CellFunction::Gate(GateFn::Buf, 1), PowerLevel::Standard)
    }
}

/// Builder-style helper used by the shipped libraries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cell(
    name: &str,
    family: &str,
    function: CellFunction,
    area: f64,
    delay: f64,
    load_delay: f64,
    power: f64,
    max_fanout: u32,
    level: PowerLevel,
) -> TechCell {
    TechCell {
        name: name.to_owned(),
        family: family.to_owned(),
        function,
        area,
        delay,
        pin_delay: Vec::new(),
        load_delay,
        power,
        max_fanout,
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        let mut l = TechLibrary::new("t");
        l.add(cell(
            "NOR2_L",
            "t",
            CellFunction::Gate(GateFn::Nor, 2),
            1.0,
            0.9,
            0.1,
            0.3,
            4,
            PowerLevel::Low,
        ));
        l.add(cell(
            "NOR2",
            "t",
            CellFunction::Gate(GateFn::Nor, 2),
            1.0,
            0.6,
            0.1,
            0.65,
            6,
            PowerLevel::Standard,
        ));
        l.add(cell(
            "NOR2_H",
            "t",
            CellFunction::Gate(GateFn::Nor, 2),
            1.0,
            0.4,
            0.08,
            1.1,
            8,
            PowerLevel::High,
        ));
        l.add(cell(
            "BUF",
            "t",
            CellFunction::Gate(GateFn::Buf, 1),
            0.5,
            0.3,
            0.1,
            0.3,
            10,
            PowerLevel::Standard,
        ));
        l
    }

    #[test]
    fn lookup_and_variants() {
        let l = lib();
        let std = l.get("NOR2").unwrap();
        let fast = l.faster_variant(std).unwrap();
        assert_eq!(fast.name, "NOR2_H");
        assert!(fast.delay < std.delay);
        let slow = l.slower_variant(std).unwrap();
        assert_eq!(slow.name, "NOR2_L");
        assert_eq!(l.power_variants(std).len(), 3);
    }

    #[test]
    fn no_faster_than_high() {
        let l = lib();
        let h = l.get("NOR2_H").unwrap();
        assert!(l.faster_variant(h).is_none());
    }

    #[test]
    fn buffer_found() {
        assert_eq!(lib().buffer().unwrap().name, "BUF");
    }

    #[test]
    fn add_replaces_same_name() {
        let mut l = lib();
        let n = l.len();
        l.add(cell(
            "BUF",
            "t",
            CellFunction::Gate(GateFn::Buf, 1),
            0.4,
            0.2,
            0.1,
            0.2,
            12,
            PowerLevel::Standard,
        ));
        assert_eq!(l.len(), n);
        assert!((l.get("BUF").unwrap().area - 0.4).abs() < 1e-12);
    }
}
