//! A DAGON-style technology binder (§2.2.3): the paper's "algorithms only"
//! baseline.
//!
//! Following Keutzer's DAGON, the subject circuit is decomposed into a
//! NAND2/INV graph, partitioned into trees at multi-fanout points ("making
//! every component in the graph whose fanout is greater than one the root
//! of a new tree"), and each tree is covered with library patterns by
//! dynamic programming, giving a locally optimal match per tree.

use crate::library::TechLibrary;
use crate::mapper::MapError;
use milo_netlist::{
    CellFunction, ComponentKind, GateFn, GenericMacro, NetId, Netlist, PinDir, PowerLevel, TechCell,
};
use std::collections::HashMap;

/// Optimization objective for the tree covering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize total cell area.
    Area,
    /// Minimize the longest intrinsic-delay path per tree.
    Delay,
}

/// A node of the NAND2/INV subject graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    /// Primary input (index into the input-name table).
    Input(u32),
    Nand(u32, u32),
    Inv(u32),
}

#[derive(Default)]
struct Graph {
    nodes: Vec<Node>,
    input_names: Vec<String>,
    inv_cache: HashMap<u32, u32>,
    nand_cache: HashMap<(u32, u32), u32>,
}

impl Graph {
    fn input(&mut self, name: &str) -> u32 {
        self.input_names.push(name.to_owned());
        self.nodes
            .push(Node::Input(self.input_names.len() as u32 - 1));
        self.nodes.len() as u32 - 1
    }

    fn inv(&mut self, x: u32) -> u32 {
        // Double-inverter elimination keeps AOI-shaped structures visible.
        if let Node::Inv(y) = self.nodes[x as usize] {
            return y;
        }
        if let Some(&n) = self.inv_cache.get(&x) {
            return n;
        }
        self.nodes.push(Node::Inv(x));
        let n = self.nodes.len() as u32 - 1;
        self.inv_cache.insert(x, n);
        n
    }

    fn nand(&mut self, a: u32, b: u32) -> u32 {
        let key = (a.min(b), a.max(b));
        if let Some(&n) = self.nand_cache.get(&key) {
            return n;
        }
        self.nodes.push(Node::Nand(a, b));
        let n = self.nodes.len() as u32 - 1;
        self.nand_cache.insert(key, n);
        n
    }

    fn and2(&mut self, a: u32, b: u32) -> u32 {
        let n = self.nand(a, b);
        self.inv(n)
    }

    fn or2(&mut self, a: u32, b: u32) -> u32 {
        let na = self.inv(a);
        let nb = self.inv(b);
        self.nand(na, nb)
    }

    fn xor2(&mut self, a: u32, b: u32) -> u32 {
        let na = self.inv(a);
        let nb = self.inv(b);
        let p = self.nand(a, nb);
        let q = self.nand(na, b);
        self.nand(p, q)
    }

    /// Decomposes an `n`-input gate over already-built operand nodes.
    fn gate(&mut self, f: GateFn, ops: &[u32]) -> u32 {
        match f {
            GateFn::Inv => self.inv(ops[0]),
            GateFn::Buf => ops[0],
            GateFn::And => ops.iter().skip(1).fold(ops[0], |acc, &x| self.and2(acc, x)),
            GateFn::Or => ops.iter().skip(1).fold(ops[0], |acc, &x| self.or2(acc, x)),
            GateFn::Xor => ops.iter().skip(1).fold(ops[0], |acc, &x| self.xor2(acc, x)),
            GateFn::Nand => {
                let a = self.gate(GateFn::And, ops);
                self.inv(a)
            }
            GateFn::Nor => {
                let a = self.gate(GateFn::Or, ops);
                self.inv(a)
            }
            GateFn::Xnor => {
                let a = self.gate(GateFn::Xor, ops);
                self.inv(a)
            }
        }
    }
}

/// A library pattern tree over leaf indices.
#[derive(Clone, Debug)]
enum PTree {
    Leaf(u8),
    Nand(Box<PTree>, Box<PTree>),
    Inv(Box<PTree>),
}

struct Pattern {
    cell: TechCell,
    tree: PTree,
    nleaves: u8,
}

/// Builds the pattern tree of an `n`-input gate with the same left-deep
/// decomposition the subject graph uses.
fn gate_ptree(f: GateFn, n: u8) -> Option<PTree> {
    fn and_chain(leaves: &mut std::ops::Range<u8>, n: u8) -> PTree {
        // AND_n = Inv(nand_chain)
        PTree::Inv(Box::new(nand_chain(leaves, n)))
    }
    fn nand_chain(leaves: &mut std::ops::Range<u8>, n: u8) -> PTree {
        // NAND_n left-deep: Nand(AND_{n-1}, leaf)
        if n == 2 {
            let a = leaves.next().expect("leaf supply");
            let b = leaves.next().expect("leaf supply");
            return PTree::Nand(Box::new(PTree::Leaf(a)), Box::new(PTree::Leaf(b)));
        }
        let inner = and_chain(leaves, n - 1);
        let last = leaves.next().expect("leaf supply");
        PTree::Nand(Box::new(inner), Box::new(PTree::Leaf(last)))
    }
    fn or_chain(leaves: &mut std::ops::Range<u8>, n: u8) -> PTree {
        // OR left-deep: or2(or_{n-1}, leaf); or2(a,b) = Nand(Inv a, Inv b)
        if n == 1 {
            let a = leaves.next().expect("leaf supply");
            return PTree::Leaf(a);
        }
        let inner = or_chain(leaves, n - 1);
        let last = leaves.next().expect("leaf supply");
        PTree::Nand(
            Box::new(PTree::Inv(Box::new(inner))),
            Box::new(PTree::Inv(Box::new(PTree::Leaf(last)))),
        )
    }
    fn xor_chain(leaves: &mut std::ops::Range<u8>, n: u8) -> PTree {
        if n == 1 {
            let a = leaves.next().expect("leaf supply");
            return PTree::Leaf(a);
        }
        let a = xor_chain(leaves, n - 1);
        let b = PTree::Leaf(leaves.next().expect("leaf supply"));
        // xor2(a,b) = Nand(Nand(a, Inv b), Nand(Inv a, b))
        let na = PTree::Inv(Box::new(a.clone()));
        let nb = PTree::Inv(Box::new(b.clone()));
        PTree::Nand(
            Box::new(PTree::Nand(Box::new(a), Box::new(nb))),
            Box::new(PTree::Nand(Box::new(na), Box::new(b))),
        )
    }
    let mut leaves = 0..n;
    let t = match f {
        GateFn::Inv => PTree::Inv(Box::new(PTree::Leaf(0))),
        GateFn::Buf => return None, // no pattern: buffers are free wires
        GateFn::And => and_chain(&mut leaves, n),
        GateFn::Nand => nand_chain(&mut leaves, n),
        GateFn::Or => or_chain(&mut leaves, n),
        GateFn::Nor => PTree::Inv(Box::new(or_chain(&mut leaves, n))),
        GateFn::Xor => xor_chain(&mut leaves, n),
        GateFn::Xnor => PTree::Inv(Box::new(xor_chain(&mut leaves, n))),
    };
    Some(t)
}

/// Hand-built patterns for the complex AOI/OAI cells (recognized by their
/// truth tables).
fn table_ptree(cell: &TechCell) -> Option<PTree> {
    let CellFunction::Table(tt) = &cell.function else {
        return None;
    };
    let aoi21 = milo_logic::TruthTable::from_fn(3, |r| {
        !((r & 1 == 1 && r >> 1 & 1 == 1) || r >> 2 & 1 == 1)
    });
    let oai21 = milo_logic::TruthTable::from_fn(3, |r| {
        !((r & 1 == 1 || r >> 1 & 1 == 1) && r >> 2 & 1 == 1)
    });
    let aoi22 = milo_logic::TruthTable::from_fn(4, |r| {
        !((r & 1 == 1 && r >> 1 & 1 == 1) || (r >> 2 & 1 == 1 && r >> 3 & 1 == 1))
    });
    let nand = |a: PTree, b: PTree| PTree::Nand(Box::new(a), Box::new(b));
    let invp = |a: PTree| PTree::Inv(Box::new(a));
    let leaf = |i: u8| PTree::Leaf(i);
    if *tt == aoi21 {
        // !((a&b)|c) = Inv(Nand(Nand(a,b), Inv c))
        Some(invp(nand(nand(leaf(0), leaf(1)), invp(leaf(2)))))
    } else if *tt == oai21 {
        // !((a|b)&c) = Nand(Or(a,b), c) = Nand(Nand(!a,!b), c)
        Some(nand(nand(invp(leaf(0)), invp(leaf(1))), leaf(2)))
    } else if *tt == aoi22 {
        // !((a&b)|(c&d)) = Inv(Nand(Nand(a,b), Nand(c,d)))
        Some(invp(nand(nand(leaf(0), leaf(1)), nand(leaf(2), leaf(3)))))
    } else {
        None
    }
}

fn build_patterns(lib: &TechLibrary) -> Vec<Pattern> {
    let mut out = Vec::new();
    for cell in lib.cells() {
        if cell.level != PowerLevel::Standard {
            continue;
        }
        let tree = match &cell.function {
            CellFunction::Gate(f, n) => gate_ptree(*f, *n),
            CellFunction::Table(_) => table_ptree(cell),
            _ => None,
        };
        if let Some(tree) = tree {
            let nleaves = match &cell.function {
                CellFunction::Gate(_, n) => *n,
                CellFunction::Table(tt) => tt.vars(),
                _ => 0,
            };
            out.push(Pattern {
                cell: cell.clone(),
                tree,
                nleaves,
            });
        }
    }
    out
}

/// Maps a purely combinational generic-gate netlist with DAGON-style tree
/// covering.
///
/// # Errors
///
/// * [`MapError::Unmapped`] if the netlist contains anything but generic
///   gates (run on random-logic circuits; MSI components go through the
///   lookup-table mapper instead);
/// * [`MapError::NoCell`] if the library lacks NAND2 or INV.
pub fn dagon_map(
    nl: &Netlist,
    lib: &TechLibrary,
    objective: Objective,
) -> Result<Netlist, MapError> {
    // 1. Build the subject graph.
    let mut g = Graph::default();
    let mut net_node: HashMap<NetId, u32> = HashMap::new();
    for p in nl.ports() {
        if p.dir == PinDir::In {
            let n = g.input(&p.name);
            net_node.insert(p.net, n);
        }
    }
    let order = nl.topo_order()?;
    for id in order {
        let comp = nl.component(id)?;
        let ComponentKind::Generic(GenericMacro::Gate(f, _)) = comp.kind else {
            return Err(MapError::Unmapped(format!(
                "dagon baseline handles generic gates only, found {}",
                comp.kind.label()
            )));
        };
        let ops: Vec<u32> = comp
            .pins
            .iter()
            .filter(|p| p.dir == PinDir::In)
            .map(|p| {
                let net = p.net.expect("validated netlist");
                *net_node.get(&net).expect("topological order")
            })
            .collect();
        let out = g.gate(f, &ops);
        let y = comp
            .pins
            .iter()
            .find(|p| p.dir == PinDir::Out)
            .and_then(|p| p.net)
            .expect("gate output connected");
        net_node.insert(y, out);
    }

    // 2. Fanout counts and tree boundaries — over *live* nodes only
    // (decomposition byproducts such as the unused Inv of an AND feeding
    // an inverting consumer must not inflate fanout and break matches).
    let mut output_nodes: Vec<(String, u32)> = Vec::new();
    for p in nl.ports() {
        if p.dir == PinDir::Out {
            let n = *net_node.get(&p.net).expect("driven output");
            output_nodes.push((p.name.clone(), n));
        }
    }
    let mut live = vec![false; g.nodes.len()];
    let mut stack: Vec<u32> = output_nodes.iter().map(|(_, n)| *n).collect();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut live[n as usize], true) {
            continue;
        }
        match g.nodes[n as usize] {
            Node::Input(_) => {}
            Node::Inv(x) => stack.push(x),
            Node::Nand(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    let mut fanout = vec![0u32; g.nodes.len()];
    for (i, node) in g.nodes.iter().enumerate() {
        if !live[i] {
            continue;
        }
        match node {
            Node::Input(_) => {}
            Node::Inv(x) => fanout[*x as usize] += 1,
            Node::Nand(a, b) => {
                fanout[*a as usize] += 1;
                fanout[*b as usize] += 1;
            }
        }
    }
    for (_, n) in &output_nodes {
        fanout[*n as usize] += 1;
    }
    let is_boundary = |n: u32, g: &Graph, fanout: &[u32]| -> bool {
        matches!(g.nodes[n as usize], Node::Input(_)) || fanout[n as usize] > 1
    };

    // 3. Patterns & DP covering.
    let patterns = build_patterns(lib);
    if !patterns
        .iter()
        .any(|p| matches!(p.cell.function, CellFunction::Gate(GateFn::Nand, 2)))
    {
        return Err(MapError::NoCell("NAND2".to_owned()));
    }
    // best[n] = (cost, pattern index, leaf assignment)
    let mut best: Vec<Option<(f64, usize, Vec<u32>)>> = vec![None; g.nodes.len()];

    fn match_at(
        g: &Graph,
        n: u32,
        p: &PTree,
        assign: &mut Vec<Option<u32>>,
        is_boundary: &dyn Fn(u32) -> bool,
        root: bool,
    ) -> bool {
        match p {
            PTree::Leaf(i) => {
                assign[*i as usize] = Some(n);
                true
            }
            // Trees may cross multi-fanout *inverters* by duplicating them
            // (the standard DAGON inverter heuristic); any other fanout
            // point is a hard tree boundary.
            _ if !root && is_boundary(n) && !matches!(g.nodes[n as usize], Node::Inv(_)) => false,
            PTree::Inv(q) => match g.nodes[n as usize] {
                Node::Inv(x) => match_at(g, x, q, assign, is_boundary, false),
                _ => false,
            },
            PTree::Nand(q1, q2) => match g.nodes[n as usize] {
                Node::Nand(a, b) => {
                    let save = assign.clone();
                    if match_at(g, a, q1, assign, is_boundary, false)
                        && match_at(g, b, q2, assign, is_boundary, false)
                    {
                        return true;
                    }
                    *assign = save;
                    match_at(g, b, q1, assign, is_boundary, false)
                        && match_at(g, a, q2, assign, is_boundary, false)
                }
                _ => false,
            },
        }
    }

    fn cover(
        g: &Graph,
        n: u32,
        patterns: &[Pattern],
        best: &mut Vec<Option<(f64, usize, Vec<u32>)>>,
        fanout: &[u32],
        objective: Objective,
    ) -> f64 {
        if matches!(g.nodes[n as usize], Node::Input(_)) {
            return 0.0;
        }
        if let Some((c, _, _)) = &best[n as usize] {
            return *c;
        }
        let boundary =
            |x: u32| matches!(g.nodes[x as usize], Node::Input(_)) || fanout[x as usize] > 1;
        let mut best_here: Option<(f64, usize, Vec<u32>)> = None;
        for (pi, pat) in patterns.iter().enumerate() {
            let mut assign: Vec<Option<u32>> = vec![None; pat.nleaves as usize];
            if !match_at(g, n, &pat.tree, &mut assign, &boundary, true) {
                continue;
            }
            let leaves: Vec<u32> = assign.into_iter().map(|a| a.expect("full match")).collect();
            let cell_cost = match objective {
                Objective::Area => pat.cell.area,
                Objective::Delay => pat.cell.delay,
            };
            let cost = match objective {
                Objective::Area => {
                    cell_cost
                        + leaves
                            .iter()
                            .map(|&l| {
                                if boundary(l) {
                                    0.0
                                } else {
                                    cover(g, l, patterns, best, fanout, objective)
                                }
                            })
                            .sum::<f64>()
                }
                Objective::Delay => {
                    cell_cost
                        + leaves
                            .iter()
                            .map(|&l| {
                                if boundary(l) {
                                    0.0
                                } else {
                                    cover(g, l, patterns, best, fanout, objective)
                                }
                            })
                            .fold(0.0f64, f64::max)
                }
            };
            if best_here.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best_here = Some((cost, pi, leaves));
            }
        }
        let entry = best_here.expect("NAND2+INV guarantee a cover");
        let c = entry.0;
        best[n as usize] = Some(entry);
        c
    }

    // Roots: boundary nodes that are not inputs, plus output nodes.
    let mut roots: Vec<u32> = (0..g.nodes.len() as u32)
        .filter(|&n| !matches!(g.nodes[n as usize], Node::Input(_)) && fanout[n as usize] > 1)
        .collect();
    for (_, n) in &output_nodes {
        if !roots.contains(n) && !matches!(g.nodes[*n as usize], Node::Input(_)) {
            roots.push(*n);
        }
    }
    for &r in &roots {
        cover(&g, r, &patterns, &mut best, &fanout, objective);
    }

    // 4. Emit the mapped netlist.
    let mut out = Netlist::new(format!("{}_dagon", nl.name));
    let mut node_net: HashMap<u32, NetId> = HashMap::new();
    for p in nl.ports() {
        if p.dir == PinDir::In {
            let net = out.add_net(&p.name);
            out.add_port(&p.name, PinDir::In, net);
            let n = net_node[&p.net];
            node_net.insert(n, net);
        }
    }
    let mut counter = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn emit(
        n: u32,
        best: &[Option<(f64, usize, Vec<u32>)>],
        patterns: &[Pattern],
        out: &mut Netlist,
        node_net: &mut HashMap<u32, NetId>,
        counter: &mut usize,
    ) -> NetId {
        if let Some(&net) = node_net.get(&n) {
            return net;
        }
        let (_, pi, leaves) = best[n as usize].as_ref().expect("covered node");
        let pat = &patterns[*pi];
        let input_nets: Vec<NetId> = leaves
            .iter()
            .map(|&l| emit(l, best, patterns, out, node_net, counter))
            .collect();
        *counter += 1;
        let comp = out.add_component(
            format!("dg{}_{}", counter, pat.cell.name.to_lowercase()),
            ComponentKind::Tech(pat.cell.clone()),
        );
        for (i, net) in input_nets.iter().enumerate() {
            out.connect_named(comp, &format!("A{i}"), *net)
                .expect("fresh cell pin");
        }
        let y = out.add_net(format!("dgn{counter}"));
        out.connect_named(comp, "Y", y).expect("fresh cell pin");
        node_net.insert(n, y);
        y
    }

    // Emit roots in dependency order (recursive emit handles it).
    for &r in &roots {
        emit(r, &best, &patterns, &mut out, &mut node_net, &mut counter);
    }
    // Bind output ports (insert a buffer for input-passthrough outputs).
    let _ = is_boundary;
    for (name, n) in output_nodes {
        let net = match node_net.get(&n) {
            Some(&net) => net,
            None => emit(n, &best, &patterns, &mut out, &mut node_net, &mut counter),
        };
        out.add_port(name, PinDir::Out, net);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libraries::{cmos_library, ecl_library};
    use crate::mapper::map_netlist;
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::Netlist;

    /// y = !((a & b) | c), plus a second output d = a & b to create fanout.
    fn aoi_circuit() -> Netlist {
        let mut nl = Netlist::new("aoi");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let ab = nl.add_net("ab");
        let y = nl.add_net("y");
        let g1 = nl.add_component(
            "g1",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::And, 2)),
        );
        nl.connect_named(g1, "A0", a).unwrap();
        nl.connect_named(g1, "A1", b).unwrap();
        nl.connect_named(g1, "Y", ab).unwrap();
        let g2 = nl.add_component(
            "g2",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Nor, 2)),
        );
        nl.connect_named(g2, "A0", ab).unwrap();
        nl.connect_named(g2, "A1", c).unwrap();
        nl.connect_named(g2, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("c", PinDir::In, c);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    /// Single-tree AOI circuit (no extra fanout): y = !((a&b)|c).
    fn aoi_tree() -> Netlist {
        aoi_circuit()
    }

    #[test]
    fn dagon_preserves_function() {
        for lib in [cmos_library(), ecl_library()] {
            let nl = aoi_tree();
            let mapped = dagon_map(&nl, &lib, Objective::Area).unwrap();
            check_comb_equivalence(&nl, &mapped, 0).unwrap_or_else(|e| panic!("{}: {e}", lib.name));
        }
    }

    #[test]
    fn dagon_finds_complex_cell() {
        let lib = cmos_library();
        let nl = aoi_tree();
        let mapped = dagon_map(&nl, &lib, Objective::Area).unwrap();
        let has_aoi = mapped.component_ids().any(|id| {
            matches!(
                mapped.component(id).map(|c| &c.kind),
                Ok(ComponentKind::Tech(c)) if c.name == "AOI21"
            )
        });
        assert!(has_aoi, "expected AOI21 in cover: {mapped:?}");
    }

    #[test]
    fn dagon_beats_or_ties_direct_mapping_area() {
        let lib = cmos_library();
        let nl = aoi_tree();
        let direct = map_netlist(&nl, &lib).unwrap();
        let dagon = dagon_map(&nl, &lib, Objective::Area).unwrap();
        let area = |n: &Netlist| -> f64 {
            n.component_ids()
                .filter_map(|id| match n.component(id).map(|c| c.kind.clone()) {
                    Ok(ComponentKind::Tech(c)) => Some(c.area),
                    _ => None,
                })
                .sum()
        };
        assert!(
            area(&dagon) <= area(&direct),
            "dagon {} vs direct {}",
            area(&dagon),
            area(&direct)
        );
    }

    #[test]
    fn dagon_xor_maps() {
        let mut nl = Netlist::new("x");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Xor, 2)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "A1", b).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y", PinDir::Out, y);
        let mapped = dagon_map(&nl, &cmos_library(), Objective::Area).unwrap();
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }

    #[test]
    fn dagon_rejects_msi() {
        let mut nl = Netlist::new("m");
        nl.add_component(
            "u",
            ComponentKind::Generic(GenericMacro::Adder {
                bits: 4,
                cla: false,
            }),
        );
        assert!(matches!(
            dagon_map(&nl, &cmos_library(), Objective::Area),
            Err(MapError::Unmapped(_))
        ));
    }

    #[test]
    fn delay_objective_runs() {
        let nl = aoi_tree();
        let mapped = dagon_map(&nl, &cmos_library(), Objective::Delay).unwrap();
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }
}
