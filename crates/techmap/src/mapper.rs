//! The technology mapper (§6.2): "uses a lookup table to replace a generic
//! component with the corresponding technology-specific component or set
//! of components".

use crate::library::TechLibrary;
use milo_netlist::{
    CellFunction, ComponentId, ComponentKind, GateFn, GenericMacro, Netlist, NetlistError,
    PowerLevel,
};
use std::fmt;

/// Errors from technology mapping.
#[derive(Debug)]
pub enum MapError {
    /// No cell (or cell combination) implements the generic macro.
    NoCell(String),
    /// The netlist still contains microarchitecture components or design
    /// instances — run the logic compilers / flattening first.
    Unmapped(String),
    /// Underlying netlist manipulation failed.
    Netlist(NetlistError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoCell(m) => write!(f, "no technology cell implements {m}"),
            MapError::Unmapped(m) => write!(f, "cannot map unexpanded component {m}"),
            MapError::Netlist(e) => write!(f, "netlist error during mapping: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<NetlistError> for MapError {
    fn from(e: NetlistError) -> Self {
        MapError::Netlist(e)
    }
}

/// The lookup table: the cell function corresponding to a generic macro.
fn target_function(m: &GenericMacro) -> CellFunction {
    match *m {
        GenericMacro::Gate(f, n) => CellFunction::Gate(f, n),
        GenericMacro::Vdd => CellFunction::Const(true),
        GenericMacro::Vss => CellFunction::Const(false),
        GenericMacro::Mux { selects } => CellFunction::Mux { selects },
        GenericMacro::Decoder { inputs } => CellFunction::Decoder { inputs },
        GenericMacro::Adder { bits, cla } => CellFunction::Adder { bits, cla },
        GenericMacro::Comparator { bits } => CellFunction::Comparator { bits },
        GenericMacro::Counter { bits } => CellFunction::Counter { bits },
        GenericMacro::Dff { set, reset, enable } => CellFunction::Dff { set, reset, enable },
        GenericMacro::Latch { set, reset } => CellFunction::Latch { set, reset },
    }
}

/// Maps every generic component of `nl` into technology cells from `lib`,
/// returning a new netlist. Gate macros without a direct cell are replaced
/// by the inverted-function cell plus an inverter (the "set of components"
/// path), e.g. XNOR2 → XOR2 + INV in the shipped ECL library.
///
/// # Errors
///
/// * [`MapError::Unmapped`] if micro components or instances remain;
/// * [`MapError::NoCell`] if neither a direct cell nor a fallback exists.
pub fn map_netlist(nl: &Netlist, lib: &TechLibrary) -> Result<Netlist, MapError> {
    let mut out = nl.clone();
    let ids: Vec<ComponentId> = out.component_ids().collect();
    for id in ids {
        let kind = out.component(id)?.kind.clone();
        match kind {
            ComponentKind::Generic(m) => map_generic(&mut out, id, &m, lib)?,
            ComponentKind::Tech(c) => {
                if c.family != lib.name {
                    // Re-target to the new library by function.
                    let cell = lib
                        .cell_at_level(&c.function, PowerLevel::Standard)
                        .or_else(|| lib.cells_with_function(&c.function).into_iter().next())
                        .ok_or_else(|| MapError::NoCell(c.name.clone()))?;
                    out.component_mut(id)?.kind = ComponentKind::Tech(cell.clone());
                }
            }
            ComponentKind::Micro(m) => return Err(MapError::Unmapped(m.describe())),
            ComponentKind::Instance { design, .. } => return Err(MapError::Unmapped(design)),
        }
    }
    Ok(out)
}

fn map_generic(
    out: &mut Netlist,
    id: ComponentId,
    m: &GenericMacro,
    lib: &TechLibrary,
) -> Result<(), MapError> {
    let want = target_function(m);
    if let Some(cell) = lib.cell_at_level(&want, PowerLevel::Standard) {
        // Pin layouts are identical by construction; swap the kind in
        // place, keeping all connections.
        debug_assert_eq!(cell.pin_specs(), m.pin_specs());
        out.component_mut(id)?.kind = ComponentKind::Tech(cell.clone());
        return Ok(());
    }
    // Fallback for wide associative gates: tree of two-input cells of the
    // de-inverted function, inverted at the root if needed.
    if let CellFunction::Gate(f, n) = want {
        if n > 2 && f.is_associative() {
            let base_fn = f.deinverted().unwrap_or(f);
            let two = lib
                .cell_at_level(&CellFunction::Gate(base_fn, 2), PowerLevel::Standard)
                .cloned();
            let invc = lib
                .cell_at_level(&CellFunction::Gate(GateFn::Inv, 1), PowerLevel::Standard)
                .cloned();
            if let Some(two) = two {
                if f.deinverted().is_none() || invc.is_some() {
                    return decompose_wide_gate(out, id, f, two, invc, lib);
                }
            }
        }
    }
    // Fallback for simple gates: inverted-function cell + INV.
    if let CellFunction::Gate(f, n) = want {
        let inv_fn = f.inverted();
        let base_cell = lib.cell_at_level(&CellFunction::Gate(inv_fn, n), PowerLevel::Standard);
        let inv_cell = lib.cell_at_level(&CellFunction::Gate(GateFn::Inv, 1), PowerLevel::Standard);
        if let (Some(base), Some(invc)) = (base_cell, inv_cell) {
            let comp = out.component(id)?;
            let name = comp.name.clone();
            let input_nets: Vec<_> = comp
                .pins
                .iter()
                .filter(|p| p.dir == milo_netlist::PinDir::In)
                .map(|p| p.net)
                .collect();
            let y_net = comp
                .pins
                .iter()
                .find(|p| p.dir == milo_netlist::PinDir::Out)
                .and_then(|p| p.net);
            out.remove_component(id)?;
            let b = out.add_component(format!("{name}_base"), ComponentKind::Tech(base.clone()));
            for (i, net) in input_nets.iter().enumerate() {
                if let Some(net) = net {
                    out.connect_named(b, &format!("A{i}"), *net)?;
                }
            }
            let mid = out.add_net(format!("{name}_mid"));
            out.connect_named(b, "Y", mid)?;
            let iv = out.add_component(format!("{name}_inv"), ComponentKind::Tech(invc.clone()));
            out.connect_named(iv, "A0", mid)?;
            if let Some(y) = y_net {
                out.connect_named(iv, "Y", y)?;
            }
            return Ok(());
        }
    }
    Err(MapError::NoCell(m.catalog_name()))
}

/// Replaces a wide associative gate with a left-deep tree of two-input
/// cells of the de-inverted function, adding an inverter at the root for
/// NAND/NOR/XNOR.
fn decompose_wide_gate(
    out: &mut Netlist,
    id: ComponentId,
    f: GateFn,
    two: milo_netlist::TechCell,
    invc: Option<milo_netlist::TechCell>,
    _lib: &TechLibrary,
) -> Result<(), MapError> {
    let comp = out.component(id)?;
    let name = comp.name.clone();
    let input_nets: Vec<milo_netlist::NetId> = comp
        .pins
        .iter()
        .filter(|p| p.dir == milo_netlist::PinDir::In)
        .filter_map(|p| p.net)
        .collect();
    let y_net = comp
        .pins
        .iter()
        .find(|p| p.dir == milo_netlist::PinDir::Out)
        .and_then(|p| p.net);
    out.remove_component(id)?;
    let mut acc = input_nets[0];
    let inverted_root = f.deinverted().is_some();
    for (k, &net) in input_nets.iter().enumerate().skip(1) {
        let g = out.add_component(format!("{name}_t{k}"), ComponentKind::Tech(two.clone()));
        out.connect_named(g, "A0", acc)?;
        out.connect_named(g, "A1", net)?;
        let last = k == input_nets.len() - 1;
        if last && !inverted_root {
            if let Some(y) = y_net {
                out.connect_named(g, "Y", y)?;
            }
            return Ok(());
        }
        let mid = out.add_net(format!("{name}_n{k}"));
        out.connect_named(g, "Y", mid)?;
        acc = mid;
    }
    // Inverted root.
    let invc = invc.expect("checked by caller");
    let iv = out.add_component(format!("{name}_inv"), ComponentKind::Tech(invc));
    out.connect_named(iv, "A0", acc)?;
    if let Some(y) = y_net {
        out.connect_named(iv, "Y", y)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libraries::{cmos_library, ecl_library};
    use milo_compilers::verify::check_comb_equivalence;
    use milo_netlist::PinDir;

    fn xnor_netlist() -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Xnor, 2)),
        );
        nl.connect_named(g, "A0", a).unwrap();
        nl.connect_named(g, "A1", b).unwrap();
        nl.connect_named(g, "Y", y).unwrap();
        nl.add_port("a", PinDir::In, a);
        nl.add_port("b", PinDir::In, b);
        nl.add_port("y", PinDir::Out, y);
        nl
    }

    #[test]
    fn direct_mapping_preserves_function() {
        let nl = xnor_netlist();
        let mapped = map_netlist(&nl, &cmos_library()).unwrap();
        assert_eq!(mapped.component_count(), 1);
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }

    #[test]
    fn fallback_mapping_xnor_in_ecl() {
        let nl = xnor_netlist();
        let mapped = map_netlist(&nl, &ecl_library()).unwrap();
        // XOR2 + INV.
        assert_eq!(mapped.component_count(), 2);
        check_comb_equivalence(&nl, &mapped, 0).unwrap();
    }

    #[test]
    fn remap_between_libraries() {
        let nl = xnor_netlist();
        let cmos = map_netlist(&nl, &cmos_library()).unwrap();
        let back = map_netlist(&cmos, &ecl_library());
        // CMOS XNOR2 has no ECL equivalent cell function match... it does:
        // function Gate(Xnor,2) is absent in ECL, so this must fail.
        assert!(back.is_err());
        // But a NAND2 netlist remaps fine.
        let mut nl2 = Netlist::new("n");
        let a = nl2.add_net("a");
        let b = nl2.add_net("b");
        let y = nl2.add_net("y");
        let g = nl2.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Nand, 2)),
        );
        nl2.connect_named(g, "A0", a).unwrap();
        nl2.connect_named(g, "A1", b).unwrap();
        nl2.connect_named(g, "Y", y).unwrap();
        nl2.add_port("a", PinDir::In, a);
        nl2.add_port("b", PinDir::In, b);
        nl2.add_port("y", PinDir::Out, y);
        let cmos2 = map_netlist(&nl2, &cmos_library()).unwrap();
        let ecl2 = map_netlist(&cmos2, &ecl_library()).unwrap();
        let ComponentKind::Tech(cell) = &ecl2
            .component(ecl2.component_ids().next().unwrap())
            .unwrap()
            .kind
        else {
            panic!("expected tech cell");
        };
        assert_eq!(cell.family, "ecl-ga");
    }

    #[test]
    fn micro_component_rejected() {
        let mut nl = Netlist::new("m");
        nl.add_component(
            "u",
            ComponentKind::Micro(milo_netlist::MicroComponent::Gate {
                function: GateFn::And,
                inputs: 6,
            }),
        );
        assert!(matches!(
            map_netlist(&nl, &ecl_library()),
            Err(MapError::Unmapped(_))
        ));
    }

    #[test]
    fn wide_xor_decomposes_to_tree() {
        let mut nl = Netlist::new("x4");
        let nets: Vec<_> = (0..4).map(|i| nl.add_net(format!("a{i}"))).collect();
        let y = nl.add_net("y");
        let g = nl.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Xor, 4)),
        );
        for (i, n) in nets.iter().enumerate() {
            nl.connect_named(g, &format!("A{i}"), *n).unwrap();
        }
        nl.connect_named(g, "Y", y).unwrap();
        for (i, n) in nets.iter().enumerate() {
            nl.add_port(format!("a{i}"), PinDir::In, *n);
        }
        nl.add_port("y", PinDir::Out, y);
        for lib in [ecl_library(), cmos_library()] {
            let mapped = map_netlist(&nl, &lib).unwrap();
            assert_eq!(mapped.component_count(), 3, "{}", lib.name);
            check_comb_equivalence(&nl, &mapped, 0).unwrap();
        }
        // XNOR3 needs the inverted-root path.
        let mut nl2 = Netlist::new("xn3");
        let nets: Vec<_> = (0..3).map(|i| nl2.add_net(format!("a{i}"))).collect();
        let y = nl2.add_net("y");
        let g = nl2.add_component(
            "g",
            ComponentKind::Generic(GenericMacro::Gate(GateFn::Xnor, 3)),
        );
        for (i, n) in nets.iter().enumerate() {
            nl2.connect_named(g, &format!("A{i}"), *n).unwrap();
        }
        nl2.connect_named(g, "Y", y).unwrap();
        for (i, n) in nets.iter().enumerate() {
            nl2.add_port(format!("a{i}"), PinDir::In, *n);
        }
        nl2.add_port("y", PinDir::Out, y);
        let mapped = map_netlist(&nl2, &ecl_library()).unwrap();
        check_comb_equivalence(&nl2, &mapped, 0).unwrap();
    }
}
